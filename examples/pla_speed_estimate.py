#!/usr/bin/env python3
"""PLA AND-plane speed estimation (the paper's Section V application).

A superbuffer drives a polysilicon line through the AND plane of a PLA; a
transistor gate hangs on the line at every second minterm.  The question the
paper asks: *does this line dominate the PLA's delay?*

This example

1. derives the per-section element values from the 4-micron NMOS process
   description (and compares them with the paper's hand-derived numbers),
2. sweeps the number of minterms and prints the Fig. 13 delay-bound table,
3. answers the designer's question: the largest line that still meets a
   10 ns budget, and
4. shows what a stronger/weaker driver would change.

Run with:  python examples/pla_speed_estimate.py
"""

from repro.apps.pla import (
    PLA_SECTION,
    max_minterms_within,
    pla_delay_sweep,
    pla_line_from_technology,
)
from repro.core.timeconstants import characteristic_times
from repro.extraction.technology import PAPER_NMOS_4UM, Layer
from repro.mos.drivers import PAPER_SUPERBUFFER
from repro.utils.tables import format_table
from repro.utils.units import format_engineering


def derive_section_values() -> None:
    technology = PAPER_NMOS_4UM
    print(technology.describe())
    print()
    segment_r = technology.wire_resistance(Layer.POLY, 24e-6, 4e-6)
    segment_c = technology.wire_capacitance(Layer.POLY, 24e-6, 4e-6)
    gate_r = technology.gate_resistance(4e-6, 4e-6)
    gate_c = technology.gate_capacitance(4e-6, 4e-6)
    rows = [
        ("poly segment R", f"{segment_r:.0f} ohm", f"{PLA_SECTION.segment_resistance:.0f} ohm"),
        ("poly segment C", format_engineering(segment_c, "F"), format_engineering(PLA_SECTION.segment_capacitance, "F")),
        ("gate R", f"{gate_r:.0f} ohm", f"{PLA_SECTION.gate_resistance:.0f} ohm"),
        ("gate C", format_engineering(gate_c, "F"), format_engineering(PLA_SECTION.gate_capacitance, "F")),
    ]
    print(format_table(["quantity", "derived from process", "paper's value"], rows,
                       title="Element values: derived vs the paper's Fig. 12 listing"))
    print()


def sweep_minterms() -> None:
    counts = (2, 4, 10, 20, 40, 60, 80, 100)
    rows = pla_delay_sweep(counts, threshold=0.7)
    print(format_table(
        ["minterms", "delay >= (ns)", "delay <= (ns)"],
        [(row.minterms, row.t_lower_ns, row.t_upper_ns) for row in rows],
        precision=4,
        title="Figure 13: PLA line delay bounds at a 0.7 V_DD threshold",
    ))
    print()
    at_100 = rows[-1]
    print(
        f"With 100 minterms the delay is guaranteed to be no worse than "
        f"{at_100.t_upper_ns:.1f} ns -- the paper's conclusion that the dominant "
        f"delay of the PLA lies elsewhere."
    )
    print()


def design_questions() -> None:
    budget = 10e-9
    largest = max_minterms_within(budget, threshold=0.7)
    print(f"Largest line meeting a {budget * 1e9:.0f} ns budget: {largest} minterms")

    print("\nDriver sizing study (40-minterm line, threshold 0.7):")
    rows = []
    for scale in (0.5, 1.0, 2.0, 4.0):
        driver = PAPER_SUPERBUFFER.scaled(scale)
        tree = pla_line_from_technology(40, driver=driver)
        times = characteristic_times(tree, "out")
        from repro.core.bounds import delay_bounds

        bounds = delay_bounds(times, 0.7)
        rows.append(
            (f"x{scale:g}", f"{driver.effective_resistance:.0f} ohm",
             bounds.lower * 1e9, bounds.upper * 1e9)
        )
    print(format_table(
        ["driver strength", "R_drive", "delay >= (ns)", "delay <= (ns)"],
        rows, precision=4,
    ))
    print("\nUpsizing the driver helps until the poly line itself dominates -- the")
    print("quadratic wire term is unaffected by drive strength, which is exactly why")
    print("the paper's quadratic-growth observation matters to PLA designers.")


def main() -> None:
    derive_section_values()
    sweep_minterms()
    design_questions()


if __name__ == "__main__":
    main()
