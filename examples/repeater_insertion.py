#!/usr/bin/env python3
"""Fixing a slow line: driver sizing, repeater insertion, and better estimates.

The paper's Fig. 13 message is that long resistive lines get slow
*quadratically*.  This example takes a line that misses its timing budget and
walks the two standard fixes, using the guaranteed (upper-bound) delay as the
acceptance criterion throughout:

1. try to meet the deadline by driver sizing alone (and see it fail --
   the wire term does not care how strong the driver is),
2. insert repeaters, sweeping the count to the optimum,
3. combine a modest driver upsize with repeaters and certify the result,
4. along the way, compare the Elmore delay, the moment-based estimates
   (D2M, AWE-2) and the exact simulated delay, to show what each buys.

Run with:  python examples/repeater_insertion.py
"""

import os

from repro.core.bounds import delay_bounds
from repro.core.timeconstants import characteristic_times
from repro.core.tree import RCTree
from repro.moments.metrics import estimate_all
from repro.mos.drivers import DriverModel
from repro.opt.buffering import Repeater, buffered_line_delay, optimal_buffer_count
from repro.opt.sizing import size_driver_for_deadline, sweep_driver_sizes
from repro.simulate.state_space import exact_step_response
from repro.utils.tables import format_table

# REPRO_EXAMPLE_FAST=1 (set by the examples smoke test) lowers simulation
# resolution; every step and printed table stays the same.
FAST = os.environ.get("REPRO_EXAMPLE_FAST") == "1"
SEGMENTS = 8 if FAST else 40

# A 4 mm poly-ish line: 8 kohm, 1.6 pF, driving a 50 fF receiver.
LINE_RESISTANCE = 8.0e3
LINE_CAPACITANCE = 1.6e-12
LOAD = 50e-15
DRIVER = DriverModel("drv_x1", effective_resistance=1000.0, output_capacitance=15e-15)
REPEATER = Repeater("rep_x4", drive_resistance=400.0, input_capacitance=25e-15, intrinsic_delay=40e-12)
DEADLINE = 2.0e-9
THRESHOLD = 0.5


def line_tree(driver: DriverModel) -> RCTree:
    tree = RCTree("in")
    tree.add_resistor("in", "drv", driver.effective_resistance)
    if driver.output_capacitance:
        tree.add_capacitor("drv", driver.output_capacitance)
    tree.add_line("drv", "out", LINE_RESISTANCE, LINE_CAPACITANCE)
    tree.add_capacitor("out", LOAD)
    tree.mark_output("out")
    return tree


def step_1_how_slow_is_it() -> None:
    tree = line_tree(DRIVER)
    times = characteristic_times(tree, "out")
    bounds = delay_bounds(times, THRESHOLD)
    exact = exact_step_response(tree, segments_per_line=SEGMENTS).delay("out", THRESHOLD)
    estimates = estimate_all(tree, "out", THRESHOLD, segments_per_line=SEGMENTS, exact=exact)
    print(f"Unbuffered line against a {DEADLINE * 1e9:.1f} ns budget:")
    print(format_table(
        ["estimator", "50% delay (ns)", "guaranteed?"],
        [
            ("Elmore delay", estimates.elmore * 1e9, "no"),
            ("single pole", estimates.single_pole * 1e9, "no"),
            ("D2M", estimates.d2m * 1e9, "no"),
            ("AWE-2 (two pole)", estimates.two_pole * 1e9, "no"),
            ("exact simulation", exact * 1e9, "-"),
            ("PR lower bound", bounds.lower * 1e9, "yes (earliest)"),
            ("PR upper bound", bounds.upper * 1e9, "yes (latest)"),
        ],
        precision=4,
    ))
    print(f"\nGuaranteed delay {bounds.upper * 1e9:.2f} ns misses the budget by "
          f"{(bounds.upper - DEADLINE) * 1e9:.2f} ns.\n")


def step_2_driver_sizing_alone() -> None:
    result = size_driver_for_deadline(line_tree, DRIVER, DEADLINE, threshold=THRESHOLD)
    print("Driver sizing alone:")
    sweep_rows = [(f"x{scale:g}", delay * 1e9) for scale, delay in
                  sweep_driver_sizes(line_tree, DRIVER, threshold=THRESHOLD,
                                     scales=[1.0, 2.0, 4.0, 8.0, 16.0, 32.0])]
    print(format_table(["driver strength", "guaranteed delay (ns)"], sweep_rows, precision=4))
    if result.feasible:
        print(f"  -> feasible with a x{result.scale:.2f} driver")
    else:
        print(f"  -> infeasible: even the best size only reaches "
              f"{result.best_achievable_delay * 1e9:.2f} ns, because the R_wire*C_wire/2 "
              "term is independent of the driver.")
    print()


def step_3_repeaters() -> None:
    print("Repeater insertion (x1 driver):")
    rows = []
    for count in (0, 1, 2, 3, 4, 6, 8, 12):
        plan = buffered_line_delay(count, DRIVER, REPEATER, LINE_RESISTANCE,
                                   LINE_CAPACITANCE, LOAD, threshold=THRESHOLD)
        rows.append((count, plan.total_delay * 1e9))
    print(format_table(["repeaters", "guaranteed delay (ns)"], rows, precision=4))
    best = optimal_buffer_count(DRIVER, REPEATER, LINE_RESISTANCE, LINE_CAPACITANCE,
                                LOAD, threshold=THRESHOLD)
    print(f"  -> optimum: {best.repeater_count} repeaters, "
          f"{best.total_delay * 1e9:.2f} ns guaranteed "
          f"({'meets' if best.total_delay <= DEADLINE else 'still misses'} the budget)\n")


def step_4_combined() -> None:
    print("Combined fix: x2 driver + optimal repeaters:")
    best = optimal_buffer_count(DRIVER.scaled(2.0), REPEATER, LINE_RESISTANCE,
                                LINE_CAPACITANCE, LOAD, threshold=THRESHOLD)
    verdict = "PASS" if best.total_delay <= DEADLINE else "FAIL"
    print(f"  {best.repeater_count} repeaters, guaranteed delay "
          f"{best.total_delay * 1e9:.2f} ns vs {DEADLINE * 1e9:.1f} ns budget -> {verdict}")


def main() -> None:
    step_1_how_slow_is_it()
    step_2_driver_sizing_alone()
    step_3_repeaters()
    step_4_combined()


if __name__ == "__main__":
    main()
