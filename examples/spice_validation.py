#!/usr/bin/env python3
"""Validate the bounds against circuit simulation, SPICE-interchange included.

The paper's Figure 11 overlays its bounds with "the exact solution, found
from circuit simulation".  This example reproduces that comparison end to end
and also exercises the interchange paths a real flow would use:

1. build a fanout net by parasitic extraction from wire geometry,
2. write it out as a SPICE deck (runnable on ngspice/HSPICE) and as SPEF,
3. read the SPICE deck back and verify the analysis is unchanged,
4. simulate the exact step response with the built-in engines (modal and
   trapezoidal) and overlay it with the bound envelope as an ASCII plot,
5. report the exact threshold crossings against the delay bounds.

Run with:  python examples/spice_validation.py
"""

import os

import numpy as np

from repro.core.bounds import BoundedResponse
from repro.core.timeconstants import characteristic_times
from repro.extraction.extractor import extract_net
from repro.extraction.geometry import RoutedNet
from repro.extraction.technology import PAPER_NMOS_4UM, Layer
from repro.mos.drivers import PAPER_SUPERBUFFER
from repro.simulate.compare import bounds_violations, max_abs_error
from repro.simulate.state_space import exact_step_response
from repro.simulate.transient import transient_step_response
from repro.spicefmt.reader import spice_to_tree
from repro.spicefmt.writer import tree_to_spice
from repro.spef.writer import tree_to_spef
from repro.utils.units import format_engineering

# REPRO_EXAMPLE_FAST=1 (set by the examples smoke test) trades simulation
# resolution for runtime; the workflow and the printed sections are the same.
FAST = os.environ.get("REPRO_EXAMPLE_FAST") == "1"
SEGMENTS = 8 if FAST else 30
STEPS = 400 if FAST else 3000


def build_net():
    """A Figure-1-style net: poly run with two gate taps and a long metal branch."""
    net = RoutedNet("sig")
    net.add_wire("drv", "p1", Layer.POLY, 200e-6, 4e-6)
    net.add_wire("p1", "p2", Layer.POLY, 200e-6, 4e-6)
    net.add_wire("p1", "m1", Layer.METAL, 1500e-6, 8e-6)
    net.add_gate("p2", 8e-6, 4e-6, series_resistance=30.0, name="gateA")
    net.add_gate("m1", 8e-6, 4e-6, series_resistance=30.0, name="gateB")
    return extract_net(net, PAPER_NMOS_4UM, driver=PAPER_SUPERBUFFER)


def ascii_plot(times, exact, lower, upper, width=72, height=16):
    """Render the envelope and the exact curve as a small ASCII chart."""
    rows = []
    for level in range(height, -1, -1):
        threshold = level / height
        line = []
        for column in range(width):
            index = int(column / (width - 1) * (len(times) - 1))
            lo, hi, ex = lower[index], upper[index], exact[index]
            char = " "
            if lo <= threshold <= hi:
                char = "."
            if abs(ex - threshold) <= 0.5 / height:
                char = "*"
            line.append(char)
        rows.append(f"{threshold:4.2f} |" + "".join(line))
    rows.append("     +" + "-" * width)
    rows.append("      0" + " " * (width - 10) + f"t = {times[-1]:.3g} s")
    return "\n".join(rows)


def main() -> None:
    tree = build_net()
    print(tree.describe())
    print()

    # --- interchange --------------------------------------------------------
    deck = tree_to_spice(tree, title="extracted fanout net", segments_per_line=20)
    spef = tree_to_spef(tree, design="spice_validation_example")
    print(f"SPICE deck: {len(deck.splitlines())} lines (write it out and run ngspice "
          "to repeat the comparison with an external simulator)")
    print(f"SPEF      : {len(spef.splitlines())} lines")
    rebuilt = spice_to_tree(deck)
    for output in ("gateA", "gateB"):
        original = characteristic_times(tree, output).tde
        recovered = characteristic_times(rebuilt, output).tde
        print(f"  Elmore delay of {output}: {format_engineering(original, 's')} "
              f"(after SPICE round-trip: {format_engineering(recovered, 's')})")
    print()

    # --- exact simulation vs bounds -----------------------------------------
    output = "gateB"
    times = characteristic_times(tree, output)
    bounded = BoundedResponse(times)
    horizon = 8.0 * times.tp
    grid = np.linspace(0.0, horizon, 200)

    modal = exact_step_response(tree, segments_per_line=SEGMENTS)
    exact = np.asarray(modal.voltage(output, grid))
    lower = np.asarray(bounded.vmin(grid))
    upper = np.asarray(bounded.vmax(grid))

    print(f"Step response at {output} ('.': bound envelope, '*': exact response)")
    print(ascii_plot(grid, exact, lower, upper))
    print()

    check = bounds_violations(modal.waveform(output, horizon, 400), bounded)
    print(f"envelope violations: lower {check.worst_lower_violation:.2e}, "
          f"upper {check.worst_upper_violation:.2e} (negative = inside)")

    transient = transient_step_response(tree, horizon, steps=STEPS, segments_per_line=SEGMENTS)
    disagreement = max_abs_error(modal.waveform(output, horizon, 300), transient.waveform(output))
    print(f"modal vs trapezoidal engines: max difference {disagreement:.2e} V")
    print()

    print("threshold crossings (exact vs bounds):")
    for threshold in (0.3, 0.5, 0.7, 0.9):
        exact_delay = modal.delay(output, threshold)
        print(
            f"  v = {threshold:.1f}: exact {format_engineering(exact_delay, 's')}, "
            f"bounds [{format_engineering(bounded.best_case_delay(threshold), 's')}, "
            f"{format_engineering(bounded.worst_case_delay(threshold), 's')}]"
        )


if __name__ == "__main__":
    main()
