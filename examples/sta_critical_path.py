#!/usr/bin/env python3
"""Static timing analysis of a small block using the bounds for interconnect.

The Penfield-Rubinstein bounds are the ancestor of every interconnect delay
model used in static timing analysis.  This example closes that loop: a small
pipelined datapath is described as a gate-level netlist, its heavier nets get
extracted RC-tree parasitics, and the mini STA engine then

1. reports the critical path with Elmore interconnect delays,
2. re-runs timing with the guaranteed upper/lower bound delays, and
3. certifies the block against its clock period exactly in the sense of the
   paper's ``OK`` function (PASS / FAIL / cannot-tell).

Run with:  python examples/sta_critical_path.py
"""

from repro.apps.nets import comb_bus_net, daisy_chain_net
from repro.mos.drivers import DriverModel
from repro.sta.analysis import TimingAnalyzer
from repro.sta.cells import standard_cell_library
from repro.sta.delaycalc import DelayModel
from repro.sta.netlist import Design
from repro.sta.parasitics import lumped, rc_tree_parasitics


def build_design(library):
    """A 4-bit-ish datapath slice: capture FF -> logic cone -> output FFs."""
    design = Design("datapath_slice")
    design.add_clock("clk")
    for port in ("a", "b", "sel"):
        design.add_primary_input(port)
    design.add_primary_output("result")

    design.add_instance("ff_a", library["DFF_X1"], D="a", CK="clk", Q="ra")
    design.add_instance("ff_b", library["DFF_X1"], D="b", CK="clk", Q="rb")
    design.add_instance("ff_s", library["DFF_X1"], D="sel", CK="clk", Q="rs")

    design.add_instance("g1", library["NAND2_X1"], A="ra", B="rb", Y="n1")
    design.add_instance("g2", library["NOR2_X1"], A="ra", B="rs", Y="n2")
    design.add_instance("g3", library["XOR2_X1"], A="n1", B="n2", Y="n3")
    design.add_instance("g4", library["AND2_X1"], A="n3", B="rs", Y="n4")
    design.add_instance("buf_out", library["BUF_X4"], A="n4", Y="result")
    design.add_instance("ff_out", library["DFF_X1"], D="n4", CK="clk", Q="q")
    design.add_primary_output("q")
    return design


def build_parasitics():
    """Post-layout parasitics for the two long nets; short nets stay lumped."""
    # n3 runs 600 um across the block as a daisy chain past a spare load.
    n3_tree = daisy_chain_net([3e-15, 0.0], 300e-6,
                              driver=None)
    # n4 is a multi-drop net feeding both the output buffer and the capture FF.
    n4_tree = comb_bus_net(2, 2e-15, 250e-6, 30e-6, driver=None)
    return {
        "n1": lumped("n1", 12e-15),
        "n2": lumped("n2", 9e-15),
        "n3": rc_tree_parasitics("n3", n3_tree, {"g4/A": "load1"}),
        "n4": rc_tree_parasitics("n4", n4_tree, {"buf_out/A": "drop0", "ff_out/D": "drop1"}),
    }


def main() -> None:
    library = standard_cell_library()
    design = build_design(library)
    parasitics = build_parasitics()
    clock_period = 2.2e-9

    analyzer = TimingAnalyzer(design, parasitics, clock_period=clock_period, threshold=0.5)

    print(f"design {design.name!r}: {len(design.instances)} cells, clock period "
          f"{clock_period * 1e9:.2f} ns\n")

    elmore = analyzer.run(DelayModel.ELMORE)
    print(elmore.describe())
    print()

    upper = analyzer.run(DelayModel.UPPER_BOUND)
    lower = analyzer.run(DelayModel.LOWER_BOUND)
    print("worst slack by interconnect delay model:")
    print(f"  guaranteed latest (upper bound) : {upper.worst_slack * 1e9:+.4f} ns")
    print(f"  Elmore estimate                 : {elmore.worst_slack * 1e9:+.4f} ns")
    print(f"  guaranteed earliest (lower bound): {lower.worst_slack * 1e9:+.4f} ns")
    print()

    verdict = analyzer.certify()
    print(f"certification at {clock_period * 1e9:.2f} ns: {verdict.name}")

    # Tighten the clock until certification becomes indeterminate, then fails.
    for period in (2.0e-9, 1.9e-9, 1.8e-9, 1.5e-9):
        tightened = TimingAnalyzer(design, parasitics, clock_period=period, threshold=0.5)
        print(f"certification at {period * 1e9:.2f} ns: {tightened.certify().name}")
    print()
    print("PASS means even the guaranteed-latest arrivals meet the period;")
    print("FAIL means even the guaranteed-earliest arrivals miss it; the gap in")
    print("between is exactly the indeterminate region the paper's OK function reports.")


if __name__ == "__main__":
    main()
