#!/usr/bin/env python3
"""Quickstart: bound the delay of an MOS signal-distribution net.

This walks the paper's core workflow on its own Figure 7 example network:

1. describe the RC tree (driver resistance, wire segments, gate loads),
2. compute the three characteristic times T_P, T_De (Elmore), T_Re,
3. evaluate the delay and voltage bounds,
4. certify the net against a (threshold, deadline) requirement, and
5. cross-check the bounds against the built-in exact simulator.

Run with:  python examples/quickstart.py
"""

from repro import (
    BoundedResponse,
    RCTree,
    certify,
    characteristic_times,
    delay_bounds,
    exact_step_response,
    voltage_bounds,
)


def build_network() -> RCTree:
    """The paper's Figure 7 network: values in ohms and farads."""
    tree = RCTree("in")
    tree.add_resistor("in", "a", 15.0)      # driver pull-up
    tree.add_capacitor("a", 2.0)            # driver output capacitance
    tree.add_resistor("a", "b", 8.0)        # side branch to another gate
    tree.add_capacitor("b", 7.0)
    tree.add_line("a", "out", resistance=3.0, capacitance=4.0)   # distributed wire
    tree.add_capacitor("out", 9.0)          # the driven gate
    tree.mark_output("out")
    return tree


def main() -> None:
    tree = build_network()
    print(tree.describe())
    print()

    # --- characteristic times (Section III of the paper) -------------------
    times = characteristic_times(tree, "out")
    print("characteristic times of output 'out':")
    print(f"  T_P  = {times.tp:8.3f}   (same for every output)")
    print(f"  T_De = {times.tde:8.3f}   (the Elmore delay)")
    print(f"  T_Re = {times.tre:8.3f}")
    print(f"  R_ee = {times.ree:8.3f}")
    print()

    # --- delay bounds, given a threshold (use 1 of the abstract) -----------
    for threshold in (0.5, 0.9):
        bounds = delay_bounds(times, threshold)
        print(
            f"delay to reach {threshold:.0%} of the final value: "
            f"between {bounds.lower:7.2f} and {bounds.upper:7.2f}"
        )
    print()

    # --- voltage bounds, given a time (use 2 of the abstract) --------------
    for t in (100.0, 500.0):
        v = voltage_bounds(times, t)
        print(f"voltage at t = {t:6.1f}: between {v.lower:.4f} and {v.upper:.4f}")
    print()

    # --- certification (use 3 of the abstract, the paper's OK function) ----
    certificate = certify(times, threshold=0.5, deadline=350.0)
    print(certificate.describe())
    print()

    # --- cross-check against the exact simulator ---------------------------
    response = exact_step_response(tree, segments_per_line=50)
    bounded = BoundedResponse(times)
    for threshold in (0.5, 0.9):
        exact = response.delay("out", threshold)
        print(
            f"exact delay to {threshold:.0%} = {exact:7.2f}  "
            f"(inside [{bounded.tmin(threshold):7.2f}, {bounded.tmax(threshold):7.2f}])"
        )


if __name__ == "__main__":
    main()
