"""Tests for repeater insertion along a long RC line."""

import pytest

from repro.mos.drivers import DriverModel, PAPER_SUPERBUFFER
from repro.opt.buffering import (
    Repeater,
    buffered_line_delay,
    compare_buffering,
    optimal_buffer_count,
)

REPEATER = Repeater("rep_x4", drive_resistance=500.0, input_capacitance=20e-15,
                    intrinsic_delay=30e-12)
DRIVER = DriverModel("drv", effective_resistance=500.0, output_capacitance=20e-15)

#: A long, very resistive line: 10 kohm / 2 pF (several mm of poly).
LONG_LINE = dict(line_resistance=10e3, line_capacitance=2e-12, load_capacitance=50e-15)
#: A short line where repeaters cannot pay for themselves.
SHORT_LINE = dict(line_resistance=100.0, line_capacitance=50e-15, load_capacitance=10e-15)


class TestRepeater:
    def test_scaled(self):
        strong = REPEATER.scaled(2.0)
        assert strong.drive_resistance == pytest.approx(250.0)
        assert strong.input_capacitance == pytest.approx(40e-15)

    def test_validation(self):
        with pytest.raises(ValueError):
            Repeater("bad", 0.0, 1e-15)
        with pytest.raises(ValueError):
            Repeater("bad", 100.0, -1e-15)


class TestBufferedLineDelay:
    def test_zero_repeaters_is_the_plain_line(self):
        plan = buffered_line_delay(0, DRIVER, REPEATER, **LONG_LINE)
        assert plan.repeater_count == 0
        assert len(plan.stage_delays) == 1
        assert plan.total_delay == pytest.approx(sum(plan.stage_delays))

    def test_stage_count(self):
        plan = buffered_line_delay(3, DRIVER, REPEATER, **LONG_LINE)
        assert len(plan.stage_delays) == 4

    def test_intrinsic_delay_charged_per_repeater(self):
        with_delay = buffered_line_delay(4, DRIVER, REPEATER, **LONG_LINE)
        free = buffered_line_delay(
            4, DRIVER, Repeater("free", 500.0, 20e-15, 0.0), **LONG_LINE
        )
        assert with_delay.total_delay == pytest.approx(
            free.total_delay + 4 * REPEATER.intrinsic_delay
        )

    def test_elmore_mode_smaller_than_bound_mode_here(self):
        bound = buffered_line_delay(2, DRIVER, REPEATER, **LONG_LINE, use_bounds=True)
        elmore = buffered_line_delay(2, DRIVER, REPEATER, **LONG_LINE, use_bounds=False)
        assert bound.total_delay != elmore.total_delay

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            buffered_line_delay(-1, DRIVER, REPEATER, **LONG_LINE)


class TestOptimalBufferCount:
    def test_long_line_wants_many_repeaters(self):
        best = optimal_buffer_count(DRIVER, REPEATER, **LONG_LINE)
        assert best.repeater_count >= 5

    def test_short_line_wants_none(self):
        best = optimal_buffer_count(DRIVER, REPEATER, **SHORT_LINE)
        assert best.repeater_count == 0

    def test_optimum_beats_neighbours(self):
        best = optimal_buffer_count(DRIVER, REPEATER, **LONG_LINE)
        k = best.repeater_count
        below = buffered_line_delay(k - 1, DRIVER, REPEATER, **LONG_LINE)
        above = buffered_line_delay(k + 1, DRIVER, REPEATER, **LONG_LINE)
        assert best.total_delay <= below.total_delay
        assert best.total_delay <= above.total_delay

    def test_faster_repeaters_mean_more_of_them(self):
        lazy = optimal_buffer_count(DRIVER, Repeater("slow", 500.0, 20e-15, 300e-12), **LONG_LINE)
        quick = optimal_buffer_count(DRIVER, Repeater("fast", 500.0, 20e-15, 5e-12), **LONG_LINE)
        assert quick.repeater_count >= lazy.repeater_count


class TestComparison:
    def test_long_line_improves_substantially(self):
        comparison = compare_buffering(PAPER_SUPERBUFFER, REPEATER, **LONG_LINE)
        assert comparison.improvement > 2.0

    def test_short_line_does_not_regress(self):
        comparison = compare_buffering(PAPER_SUPERBUFFER, REPEATER, **SHORT_LINE)
        assert comparison.improvement == pytest.approx(1.0)

    def test_buffered_delay_grows_linearly_not_quadratically(self):
        """Repeaters restore linear growth with line length (vs Fig. 13's quadratic)."""
        single = compare_buffering(DRIVER, REPEATER, 5e3, 1e-12, 50e-15).buffered.total_delay
        double = compare_buffering(DRIVER, REPEATER, 10e3, 2e-12, 50e-15).buffered.total_delay
        assert double / single < 2.6  # unbuffered the ratio would approach 4


class TestDesignScopeAdvice:
    def test_advises_on_critical_path_nets(self):
        from repro.generators import random_design
        from repro.graph import TimingGraph
        from repro.opt.buffering import advise_critical_buffering

        design, parasitics = random_design(80, seed=17, distributed_fraction=1.0)
        graph = TimingGraph(design, parasitics, clock_period=1e-9)
        repeater = Repeater(
            "rep", drive_resistance=3e3, input_capacitance=6e-15,
            intrinsic_delay=40e-12,
        )
        advice = advise_critical_buffering(graph, repeater, top=2)
        assert advice
        path_nets = {
            segment.arc[4:]
            for segment in graph.critical_path()
            if segment.arc.startswith("net ")
        }
        for entry in advice:
            assert entry.net in path_nets
            assert entry.wire_delay > 0.0
            assert entry.improvement >= 1.0 or entry.recommended_repeaters == 0

    def test_lumped_nets_are_skipped(self):
        from repro.generators import random_design
        from repro.graph import TimingGraph
        from repro.opt.buffering import advise_critical_buffering

        design, parasitics = random_design(40, seed=17, distributed_fraction=0.0)
        graph = TimingGraph(design, parasitics, clock_period=1e-9)
        repeater = Repeater("rep", drive_resistance=3e3, input_capacitance=6e-15)
        assert advise_critical_buffering(graph, repeater) == []
