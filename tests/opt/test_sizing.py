"""Tests for driver sizing against a guaranteed-delay deadline."""

import pytest

from repro.apps.pla import pla_line_from_technology
from repro.core.bounds import delay_bounds
from repro.core.timeconstants import characteristic_times
from repro.mos.drivers import PAPER_SUPERBUFFER
from repro.opt.sizing import size_driver_for_deadline, sweep_driver_sizes


def pla_factory(minterms):
    def factory(driver):
        return pla_line_from_technology(minterms, driver=driver)

    return factory


class TestSweep:
    def test_sweep_returns_scale_delay_pairs(self):
        sweep = sweep_driver_sizes(pla_factory(20), PAPER_SUPERBUFFER, threshold=0.7,
                                   scales=[0.5, 1.0, 2.0, 4.0])
        assert len(sweep) == 4
        assert all(delay > 0 for _, delay in sweep)

    def test_upsizing_helps_for_driver_dominated_nets(self):
        sweep = dict(sweep_driver_sizes(pla_factory(4), PAPER_SUPERBUFFER, threshold=0.7,
                                        scales=[1.0, 4.0]))
        assert sweep[4.0] < sweep[1.0]

    def test_upsizing_saturates_for_wire_dominated_nets(self):
        sweep = dict(sweep_driver_sizes(pla_factory(100), PAPER_SUPERBUFFER, threshold=0.7,
                                        scales=[1.0, 16.0]))
        # The quadratic wire term dominates: a 16x driver buys well under 2x.
        assert sweep[16.0] > sweep[1.0] / 2.0

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            sweep_driver_sizes(pla_factory(10), PAPER_SUPERBUFFER, scales=[0.0])


class TestSizing:
    def test_feasible_deadline_met_with_margin(self):
        result = size_driver_for_deadline(
            pla_factory(20), PAPER_SUPERBUFFER, deadline=0.8e-9, threshold=0.7
        )
        assert result.feasible
        assert result.guaranteed_delay <= 0.8e-9
        assert result.scale > 0

    def test_chosen_driver_actually_meets_deadline(self):
        result = size_driver_for_deadline(
            pla_factory(20), PAPER_SUPERBUFFER, deadline=0.8e-9, threshold=0.7
        )
        tree = pla_line_from_technology(20, driver=result.driver)
        bounds = delay_bounds(characteristic_times(tree, "out"), 0.7)
        assert bounds.upper <= 0.8e-9 * (1 + 1e-9)

    def test_smaller_driver_would_miss_the_deadline(self):
        result = size_driver_for_deadline(
            pla_factory(20), PAPER_SUPERBUFFER, deadline=0.8e-9, threshold=0.7
        )
        weaker = PAPER_SUPERBUFFER.scaled(result.scale * 0.7)
        tree = pla_line_from_technology(20, driver=weaker)
        bounds = delay_bounds(characteristic_times(tree, "out"), 0.7)
        assert bounds.upper > 0.8e-9

    def test_infeasible_when_wire_alone_is_too_slow(self):
        result = size_driver_for_deadline(
            pla_factory(100), PAPER_SUPERBUFFER, deadline=2.0e-9, threshold=0.7
        )
        assert not result.feasible
        assert result.scale is None
        assert result.best_achievable_delay > 2.0e-9

    def test_deadline_validation(self):
        with pytest.raises(ValueError):
            size_driver_for_deadline(pla_factory(10), PAPER_SUPERBUFFER, deadline=0.0)

    def test_zero_refinement_steps_returns_grid_answer(self):
        result = size_driver_for_deadline(
            pla_factory(20), PAPER_SUPERBUFFER, deadline=0.8e-9, threshold=0.7,
            refinement_steps=0,
        )
        assert result.feasible
        assert result.guaranteed_delay <= 0.8e-9
        # No refinement: the chosen scale is the smallest passing sweep point.
        passing = [s for s, d in result.sweep if d <= 0.8e-9]
        assert result.scale == min(passing)

    def test_refinement_tightens_the_grid_answer(self):
        coarse = size_driver_for_deadline(
            pla_factory(20), PAPER_SUPERBUFFER, deadline=0.8e-9, threshold=0.7,
            refinement_steps=0,
        )
        refined = size_driver_for_deadline(
            pla_factory(20), PAPER_SUPERBUFFER, deadline=0.8e-9, threshold=0.7,
        )
        assert refined.scale <= coarse.scale
        assert refined.guaranteed_delay <= 0.8e-9


class TestSizeValidatingFactories:
    def test_factory_that_rejects_unprobed_sizes_still_sweeps(self):
        """The evaluator probes extra driver sizes; a factory that validates
        its driver must not make a previously-valid sweep crash -- the
        evaluator falls back to per-candidate compilation instead."""

        def picky_factory(driver):
            if driver.effective_resistance > 400.0:  # rejects the 0.5x probe
                raise ValueError("driver too weak for this net")
            return pla_line_from_technology(10, driver=driver)

        sweep = sweep_driver_sizes(
            picky_factory, PAPER_SUPERBUFFER, threshold=0.7, scales=[1.0, 2.0, 4.0]
        )
        assert len(sweep) == 3
        assert all(delay > 0 for _, delay in sweep)

    def test_topology_varying_factory_falls_back(self):
        """A factory whose topology depends on the driver must be detected by
        the probe and evaluated without the incremental template."""

        def varying_factory(driver):
            return pla_line_from_technology(
                4 if driver.effective_resistance < 200.0 else 8, driver=driver
            )

        sweep = sweep_driver_sizes(
            varying_factory, PAPER_SUPERBUFFER, threshold=0.7, scales=[1.0, 4.0]
        )
        assert len(sweep) == 2
        assert all(delay > 0 for _, delay in sweep)


class TestDesignScopeEco:
    """The design-scope ECO loop over a TimingGraph."""

    @staticmethod
    def _graph(period):
        from repro.generators import random_design
        from repro.graph import TimingGraph

        design, parasitics = random_design(120, seed=33)
        return TimingGraph(design, parasitics, clock_period=period)

    def test_next_drive_strength_walks_the_family(self):
        from repro.opt.sizing import next_drive_strength
        from repro.sta.cells import standard_cell_library

        library = standard_cell_library()
        assert next_drive_strength(library["INV_X1"], library) is library["INV_X2"]
        assert next_drive_strength(library["INV_X2"], library) is library["INV_X4"]
        assert next_drive_strength(library["INV_X4"], library) is None

    def test_eco_improves_worst_slack(self):
        from repro.opt.sizing import upsize_critical_path
        from repro.sta.cells import standard_cell_library
        from repro.sta.delaycalc import DelayModel

        graph = self._graph(0.8e-9)
        before = graph.worst_slack(DelayModel.UPPER_BOUND)
        result = upsize_critical_path(graph, standard_cell_library(), max_steps=25)
        assert result.worst_slack > before
        assert result.steps
        for step in result.steps:
            assert step.cone_size > 0

    def test_eco_is_a_real_edit_and_matches_fresh_analysis(self):
        from repro.generators import random_design
        from repro.graph import TimingGraph
        from repro.opt.sizing import upsize_critical_path
        from repro.sta.cells import standard_cell_library
        from repro.sta.delaycalc import DelayModel

        design, parasitics = random_design(120, seed=33)
        graph = TimingGraph(design, parasitics, clock_period=0.8e-9)
        result = upsize_critical_path(graph, standard_cell_library(), max_steps=10)
        fresh = TimingGraph(design, parasitics, clock_period=0.8e-9)
        assert fresh.worst_slack(DelayModel.UPPER_BOUND) == pytest.approx(
            result.worst_slack, rel=1e-12
        )

    def test_eco_stops_immediately_when_timing_met(self):
        from repro.opt.sizing import upsize_critical_path
        from repro.sta.cells import standard_cell_library

        graph = self._graph(1e-6)
        result = upsize_critical_path(graph, standard_cell_library())
        assert result.met
        assert result.swap_count == 0
