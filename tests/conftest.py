"""Shared fixtures for the test-suite."""

import pytest

from repro.core.networks import figure3_tree, figure7_tree, rc_ladder, single_line
from repro.core.timeconstants import characteristic_times
from repro.generators.random_trees import RandomTreeConfig, random_tree


@pytest.fixture
def fig7():
    """The paper's Figure 7 example network."""
    return figure7_tree()


@pytest.fixture
def fig7_times(fig7):
    """Characteristic times of the Figure 7 network's output."""
    return characteristic_times(fig7, "out")


@pytest.fixture
def fig3():
    """The paper's Figure 3 resistance-term illustration network."""
    return figure3_tree()


@pytest.fixture
def unit_line():
    """A single uniform RC line with R = C = 1."""
    return single_line(1.0, 1.0)


@pytest.fixture
def ladder10():
    """A 10-section lumped RC ladder."""
    return rc_ladder(10, 5.0, 2e-12)


@pytest.fixture(params=[0, 1, 2, 3, 4])
def small_random_tree(request):
    """A handful of deterministic random trees of moderate size."""
    return random_tree(seed=request.param, config=RandomTreeConfig(nodes=25))
