"""Shared fixtures for the test-suite."""

import signal

import pytest

from repro.core.networks import figure3_tree, figure7_tree, rc_ladder, single_line
from repro.core.timeconstants import characteristic_times
from repro.generators.random_trees import RandomTreeConfig, random_tree


@pytest.fixture
def hang_guard():
    """Fail the test with SIGALRM if it runs past a wall-clock deadline.

    A deadlocked server or coalescer would otherwise stall the whole
    suite; this is the in-tree fallback for environments without the
    ``pytest-timeout`` plugin (CI additionally passes ``--timeout``).
    SIGALRM only fires on the main thread, which is where pytest runs the
    test body -- executor threads blocked on a lock don't mask it.
    """

    def arm(seconds: int = 60):
        def on_alarm(signum, frame):
            raise TimeoutError(f"test exceeded its {seconds}s hang guard")

        previous = signal.signal(signal.SIGALRM, on_alarm)
        signal.alarm(seconds)
        return previous

    previous_handler = arm()
    yield arm
    signal.alarm(0)
    signal.signal(signal.SIGALRM, previous_handler)


@pytest.fixture
def fig7():
    """The paper's Figure 7 example network."""
    return figure7_tree()


@pytest.fixture
def fig7_times(fig7):
    """Characteristic times of the Figure 7 network's output."""
    return characteristic_times(fig7, "out")


@pytest.fixture
def fig3():
    """The paper's Figure 3 resistance-term illustration network."""
    return figure3_tree()


@pytest.fixture
def unit_line():
    """A single uniform RC line with R = C = 1."""
    return single_line(1.0, 1.0)


@pytest.fixture
def ladder10():
    """A 10-section lumped RC ladder."""
    return rc_ladder(10, 5.0, 2e-12)


@pytest.fixture(params=[0, 1, 2, 3, 4])
def small_random_tree(request):
    """A handful of deterministic random trees of moderate size."""
    return random_tree(seed=request.param, config=RandomTreeConfig(nodes=25))
