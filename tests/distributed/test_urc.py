"""Tests for the analytic uniform-RC-line step response."""

import numpy as np
import pytest

from repro.core.exceptions import AnalysisError
from repro.distributed.urc import (
    URC_HALF_VOLTAGE_COEFFICIENT,
    urc_step_response,
    urc_step_waveform,
    urc_threshold_delay,
)


class TestSeriesSolution:
    def test_zero_at_time_zero(self):
        assert urc_step_response(1.0, 1.0, 0.0) == 0.0

    def test_driven_end_is_one_for_positive_time(self):
        assert urc_step_response(1.0, 1.0, 1e-6, position=0.0) == pytest.approx(1.0)

    def test_approaches_one(self):
        assert urc_step_response(1.0, 1.0, 10.0) == pytest.approx(1.0, abs=1e-10)

    def test_monotone_in_time(self):
        t = np.linspace(0.0, 3.0, 200)
        v = urc_step_response(1.0, 1.0, t)
        assert np.all(np.diff(v) >= -1e-12)

    def test_monotone_in_position(self):
        # Points nearer the driven end respond earlier.
        t = 0.2
        near = urc_step_response(1.0, 1.0, t, position=0.3)
        far = urc_step_response(1.0, 1.0, t, position=1.0)
        assert near > far

    def test_scaling_with_rc(self):
        # Doubling RC halves normalised time: v(R, C, t) == v(2R, C, 2t).
        assert urc_step_response(1.0, 1.0, 0.4) == pytest.approx(
            urc_step_response(2.0, 1.0, 0.8), abs=1e-12
        )

    def test_vectorised(self):
        values = urc_step_response(1.0, 1.0, [0.1, 0.2, 0.3])
        assert isinstance(values, np.ndarray)
        assert values.shape == (3,)

    def test_rejects_negative_time(self):
        with pytest.raises(AnalysisError):
            urc_step_response(1.0, 1.0, -0.5)

    def test_rejects_zero_resistance(self):
        with pytest.raises(ValueError):
            urc_step_response(0.0, 1.0, 0.5)


class TestElmoreConsistency:
    def test_area_above_response_is_rc_over_2(self):
        # T_De of the open end of a line is RC/2 (paper, Section III).
        t = np.linspace(0.0, 30.0, 30000)
        v = urc_step_response(1.0, 1.0, t)
        area = np.trapezoid(1.0 - v, t)
        assert area == pytest.approx(0.5, abs=1e-3)


class TestThresholdDelay:
    def test_half_voltage_near_0_38_rc(self):
        delay = urc_threshold_delay(1.0, 1.0, 0.5)
        assert delay == pytest.approx(URC_HALF_VOLTAGE_COEFFICIENT, abs=2e-3)

    def test_delay_scales_with_rc(self):
        assert urc_threshold_delay(10.0, 2.0, 0.5) == pytest.approx(
            20.0 * urc_threshold_delay(1.0, 1.0, 0.5), rel=1e-6
        )

    def test_delay_within_pr_bounds(self):
        from repro.core.bounds import delay_lower_bound, delay_upper_bound
        from repro.core.networks import single_line
        from repro.core.timeconstants import characteristic_times

        times = characteristic_times(single_line(1.0, 1.0), "out")
        for threshold in (0.3, 0.5, 0.7, 0.9):
            exact = urc_threshold_delay(1.0, 1.0, threshold)
            assert float(delay_lower_bound(times, threshold)) <= exact + 1e-9
            assert exact <= float(delay_upper_bound(times, threshold)) + 1e-9

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            urc_threshold_delay(1.0, 1.0, 0.0)


class TestWaveformHelper:
    def test_waveform_sampling(self):
        wf = urc_step_waveform(1.0, 1.0, 3.0, points=100)
        assert len(wf) == 100
        assert wf.is_monotonic()

    def test_rejects_bad_horizon(self):
        with pytest.raises(AnalysisError):
            urc_step_waveform(1.0, 1.0, 0.0)
