"""Tests for distributed-line segmentation and convergence."""

import pytest

from repro.core.timeconstants import characteristic_times
from repro.distributed.segmentation import (
    convergence_study,
    lumped_line_tree,
    segmentation_error,
)


class TestLumpedLineTree:
    def test_totals_preserved(self):
        tree = lumped_line_tree(10.0, 4.0, 8)
        assert tree.total_resistance == pytest.approx(10.0)
        assert tree.total_capacitance == pytest.approx(4.0)
        assert tree.outputs == ["out"]

    def test_pi_lumping_preserves_elmore_exactly(self):
        # Pi sections preserve the first moment for any section count.
        for segments in (1, 2, 5, 20):
            tree = lumped_line_tree(10.0, 4.0, segments, style="pi")
            assert characteristic_times(tree, "out").tde == pytest.approx(20.0)

    def test_l_lumping_overestimates_elmore(self):
        tree = lumped_line_tree(10.0, 4.0, 4, style="L")
        assert characteristic_times(tree, "out").tde > 20.0


class TestSegmentationError:
    def test_error_decreases_with_more_segments(self):
        coarse = segmentation_error(1.0, 1.0, 1)
        fine = segmentation_error(1.0, 1.0, 20)
        assert fine.max_error < coarse.max_error

    def test_many_segments_are_accurate(self):
        point = segmentation_error(1.0, 1.0, 50)
        assert point.max_error < 5e-3
        assert abs(point.delay_error_50) < 2e-3

    def test_result_records_inputs(self):
        point = segmentation_error(1.0, 1.0, 3, style="L")
        assert point.segments == 3
        assert point.style == "L"


class TestConvergenceStudy:
    def test_monotone_convergence(self):
        points = convergence_study(segment_counts=(1, 2, 5, 10, 20))
        errors = [p.max_error for p in points]
        assert errors == sorted(errors, reverse=True)

    def test_returns_one_point_per_count(self):
        points = convergence_study(segment_counts=(2, 4))
        assert [p.segments for p in points] == [2, 4]
