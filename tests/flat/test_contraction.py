"""Unit and regression tests for the pointer-jumping contraction engine.

Covers the kernel primitives (jump schedules, path/subtree sums) against
brute-force oracles, the 10k-node chain regression the tentpole exists for
(no RecursionError, O(log N) rounds, 1e-12 parity with the level sweeps),
and the observability knobs (``last_selection`` / ``REPRO_ENGINE_LOG``)
with the chain-auto-picks-contract guarantee.
"""

import math
import random

import numpy as np
import pytest

from repro.flat import FlatForest
from repro.flat.contraction import (
    jump_schedule,
    last_round_count,
    path_sums,
    subtree_sums,
    sweep_scenarios_contract,
)
from repro.parallel import backends as backends_module
from repro.parallel import last_selection, should_contract

from tests.properties.topologies import (
    TOPOLOGY_KINDS,
    topology_flat_tree,
    topology_parents,
)

FIELDS = ("tp", "tde", "tre", "ree", "total_capacitance")
CHAIN_NODES = 10_001


def _brute_path_sums(parent, weights):
    totals = np.array(weights, dtype=float)
    order = sorted(range(len(parent)), key=lambda i: _depth(parent, i))
    for node in order:
        if parent[node] >= 0:
            totals[node] += totals[parent[node]]
    return totals


def _brute_subtree_sums(parent, weights):
    totals = np.array(weights, dtype=float)
    order = sorted(range(len(parent)), key=lambda i: -_depth(parent, i))
    for node in order:
        if parent[node] >= 0:
            totals[parent[node]] += totals[node]
    return totals


def _depth(parent, node):
    depth = 0
    while parent[node] >= 0:
        node = parent[node]
        depth += 1
    return depth


class TestPrimitives:
    def test_chain_schedule_is_logarithmic(self):
        parent = np.arange(-1, 255)
        schedule = jump_schedule(parent)
        assert len(schedule) == 8  # ceil(log2(depth + 1)), depth = 255

    def test_star_schedule_is_one_round(self):
        parent = np.zeros(50, dtype=np.int64)
        parent[0] = -1
        assert len(jump_schedule(parent)) == 1

    def test_empty_and_single_node(self):
        assert jump_schedule(np.array([], dtype=np.int64)) == []
        assert jump_schedule(np.array([-1])) == []

    @pytest.mark.parametrize("kind", TOPOLOGY_KINDS)
    def test_sums_match_brute_force(self, kind):
        rng = random.Random(17)
        parent = np.asarray(topology_parents(kind, 80, rng), dtype=np.int64)
        weights = np.asarray([rng.uniform(-2.0, 2.0) for _ in range(80)])
        schedule = jump_schedule(parent)
        np.testing.assert_allclose(
            path_sums(weights, schedule), _brute_path_sums(parent, weights), rtol=1e-12
        )
        np.testing.assert_allclose(
            subtree_sums(weights, schedule),
            _brute_subtree_sums(parent, weights),
            rtol=1e-12,
        )

    def test_sums_accept_scenario_planes(self):
        rng = np.random.default_rng(3)
        parent = np.asarray(topology_parents("caterpillar", 30, random.Random(2)))
        weights = rng.uniform(0.0, 1.0, size=(30, 4))
        schedule = jump_schedule(parent)
        stacked = np.stack(
            [path_sums(weights[:, s], schedule) for s in range(4)], axis=1
        )
        np.testing.assert_array_equal(path_sums(weights, schedule), stacked)

    def test_forest_of_trees_sums_independently(self):
        # Two chains: sums must never leak across root boundaries.
        parent = np.array([-1, 0, 1, -1, 3, 4])
        weights = np.ones(6)
        schedule = jump_schedule(parent)
        np.testing.assert_array_equal(
            path_sums(weights, schedule), [1, 2, 3, 1, 2, 3]
        )
        np.testing.assert_array_equal(
            subtree_sums(weights, schedule), [3, 2, 1, 3, 2, 1]
        )


class TestChainRegression:
    @pytest.fixture(scope="class")
    def chain(self):
        return FlatForest([topology_flat_tree("chain", CHAIN_NODES, seed=11)])

    def test_deep_chain_solves_without_recursion(self, chain):
        """10k-node chain: builds, solves and stays iterative end to end."""
        times = chain.solve_batch(count=2, engine="contract")
        assert np.all(np.isfinite(times.tde))

    def test_contract_rounds_are_logarithmic(self, chain):
        chain.solve_batch(count=1, engine="contract")
        assert last_round_count() == math.ceil(math.log2(CHAIN_NODES))

    def test_chain_parity_with_level_sweeps(self, chain):
        rng = np.random.default_rng(5)
        scale = rng.uniform(0.5, 2.0, size=(3, chain.node_count))
        want = chain.solve_batch(edge_r=scale * chain._edge_r, engine="numpy")
        got = chain.solve_batch(edge_r=scale * chain._edge_r, engine="contract")
        for name in FIELDS:
            a, b = getattr(want, name), getattr(got, name)
            scale_ = np.maximum(np.abs(a), 1e-30)
            assert np.all(np.abs(b - a) <= 1e-12 * scale_), name


class TestAutoSelection:
    def test_chain_auto_picks_contract(self):
        chain = FlatForest([topology_flat_tree("chain", 4000, seed=1)])
        chain.solve_batch(count=1)
        record = last_selection()
        assert record["engine"] == "contract"
        assert record["requested"] == "auto"
        assert record["nodes"] == 4000 and record["depth"] == 3999

    def test_shallow_forest_stays_on_level_sweeps(self):
        forest = FlatForest(
            [topology_flat_tree("balanced", 200, seed=s) for s in range(3)]
        )
        forest.solve_batch(count=1)
        assert last_selection()["engine"] == "numpy"

    def test_explicit_engine_is_recorded_verbatim(self):
        forest = FlatForest([topology_flat_tree("star", 40, seed=2)])
        forest.solve_batch(count=1, engine="contract")
        record = last_selection()
        assert record["requested"] == "contract"
        assert record["engine"] == "contract"

    def test_should_contract_threshold(self, monkeypatch):
        assert not should_contract(0, 1)  # degenerate sizes never contract
        assert not should_contract(10, 1024)  # bushy: ratio 1
        assert should_contract(3999, 4000)  # chain: ratio ~334
        monkeypatch.setattr(backends_module, "CONTRACT_DEPTH_RATIO", 0.5)
        assert should_contract(10, 1024)  # threshold is read at call time


class TestEngineLog:
    def test_log_knob_reports_selection(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_LOG", "1")
        chain = FlatForest([topology_flat_tree("chain", 4000, seed=1)])
        chain.solve_batch(count=2)
        err = capsys.readouterr().err
        assert "repro.engine: engine=contract (requested=auto)" in err
        assert "nodes=4000 scenarios=2 depth=3999" in err

    def test_log_knob_off_by_default(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE_LOG", raising=False)
        forest = FlatForest([topology_flat_tree("star", 40, seed=2)])
        forest.solve_batch(count=1)
        assert capsys.readouterr().err == ""

    def test_log_knob_zero_means_off(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_LOG", "0")
        forest = FlatForest([topology_flat_tree("star", 40, seed=2)])
        forest.solve_batch(count=1)
        assert capsys.readouterr().err == ""
