"""Scenario-batched FlatTree/FlatForest solves vs the single-scenario engine."""

import numpy as np
import pytest

from repro.core.exceptions import AnalysisError
from repro.core.networks import figure7_tree
from repro.flat import FlatForest, FlatTree
from repro.generators import RandomTreeConfig, random_flat_tree, random_forest
from repro.scenarios import ParameterPlane, Scenario, ScenarioSet, scaled_tree

SCENARIOS = ScenarioSet(
    [
        Scenario("nom"),
        Scenario("slow", r_derate=1.25, c_derate=1.2),
        Scenario("fast", r_derate=0.8, c_derate=0.85),
    ]
)


def assert_matches_loop(flat, tree, scenarios, rtol=1e-12):
    """Batched solve row ``s`` == fresh solve of the scenario-scaled tree."""
    times = flat.solve_scenarios(scenarios)
    for index, scenario in enumerate(scenarios):
        reference = FlatTree.from_tree(
            scaled_tree(tree, scenario.r_derate, scenario.c_derate)
        ).solve()
        np.testing.assert_allclose(times.tde[index], reference.tde, rtol=rtol, atol=0)
        np.testing.assert_allclose(times.tre[index], reference.tre, rtol=rtol, atol=0)
        np.testing.assert_allclose(times.ree[index], reference.ree, rtol=rtol, atol=0)
        assert times.tp[index] == pytest.approx(reference.tp, rel=rtol)
        assert times.total_capacitance[index] == pytest.approx(
            reference.total_capacitance, rel=rtol
        )


class TestFlatTreeScenarios:
    def test_matches_per_scenario_loop_on_figure7(self):
        tree = figure7_tree()
        assert_matches_loop(FlatTree.from_tree(tree), tree, SCENARIOS)

    def test_plane_shapes(self):
        flat = FlatTree.from_tree(figure7_tree())
        n = len(flat)
        plane = ParameterPlane(
            r_scale=np.full((2, n), 1.1), c_scale=np.ones((2, n))
        )
        times = flat.solve_scenarios(plane)
        assert times.tde.shape == (2, n)
        assert times.scenario_count == 2

    def test_solve_batch_defaults_to_base_arrays(self):
        flat = FlatTree.from_tree(figure7_tree())
        single = flat.solve()
        batched = flat.solve_batch(count=1)
        np.testing.assert_allclose(batched.tde[0], single.tde, rtol=1e-12, atol=0)
        assert batched.tp[0] == pytest.approx(single.tp, rel=1e-12)

    def test_shape_mismatch_rejected(self):
        flat = FlatTree.from_tree(figure7_tree())
        with pytest.raises(AnalysisError):
            flat.solve_batch(edge_r=np.ones((2, len(flat) + 1)))
        with pytest.raises(AnalysisError):
            flat.solve_batch(edge_r=np.ones(2), edge_c=np.ones(3))

    def test_single_scenario_cache_untouched(self):
        flat = FlatTree.from_tree(figure7_tree())
        single = flat.solve()
        flat.solve_scenarios(SCENARIOS)
        assert flat.solve() is single  # cache neither read nor invalidated

    def test_batched_solve_sees_incremental_updates(self):
        flat = random_flat_tree(seed=4, config=RandomTreeConfig(nodes=60))
        flat.update_resistance(5, 123.0)
        flat.update_capacitance(9, 4.5e-13)
        nominal = flat.solve_scenarios(ScenarioSet([Scenario("nom")]))
        fresh = flat.solve()
        np.testing.assert_allclose(nominal.tde[0], fresh.tde, rtol=1e-12, atol=0)

    def test_random_tree_parity(self):
        flat = random_flat_tree(seed=11, config=RandomTreeConfig(nodes=120))
        times = flat.solve_scenarios(SCENARIOS)
        # Row s equals solving a tree whose arrays carry the scenario factors.
        for index, scenario in enumerate(SCENARIOS):
            reference = FlatTree(
                flat.names,
                flat._parent.copy(),
                flat._edge_r * scenario.r_derate,
                flat._edge_c * scenario.c_derate,
                flat._node_c * scenario.c_derate,
                flat._is_output.copy(),
            ).solve()
            np.testing.assert_allclose(
                times.tde[index], reference.tde, rtol=1e-12, atol=0
            )
            np.testing.assert_allclose(
                times.tre[index], reference.tre, rtol=1e-12, atol=0
            )


class TestFlatForestScenarios:
    def test_forest_batch_matches_member_solves(self):
        forest = random_forest(8, seed=3, config=RandomTreeConfig(nodes=40))
        times = forest.solve_batch(
            edge_r=SCENARIOS.r_derates,
            edge_c=SCENARIOS.c_derates,
            count=3,
        )
        # (S,) planes are per-scenario factors *applied as effective values*,
        # so compare against per-tree solves with constant element arrays.
        assert times.tde.shape == (3, forest.node_count)
        assert times.tp.shape == (3, len(forest))

    def test_forest_scenario_rows_match_scaled_trees(self):
        trees = [figure7_tree(), figure7_tree()]
        forest = FlatForest.from_rctrees(trees)
        r = SCENARIOS.r_derates[:, np.newaxis]
        c = SCENARIOS.c_derates[:, np.newaxis]
        times = forest.solve_batch(
            edge_r=forest._edge_r * r,
            edge_c=forest._edge_c * c,
            node_c=forest._node_c * c,
            count=3,
        )
        for index, scenario in enumerate(SCENARIOS):
            for t, tree in enumerate(trees):
                reference = FlatTree.from_tree(
                    scaled_tree(tree, scenario.r_derate, scenario.c_derate)
                ).solve()
                window = forest.tree_slice(t)
                np.testing.assert_allclose(
                    times.tde[index, window], reference.tde, rtol=1e-12, atol=0
                )
                assert times.tp[index, t] == pytest.approx(reference.tp, rel=1e-12)
                assert times.total_capacitance[index, t] == pytest.approx(
                    reference.total_capacitance, rel=1e-12
                )

    def test_replace_tree_then_batch_is_exact(self):
        forest = random_forest(5, seed=9, config=RandomTreeConfig(nodes=30))
        replacement = random_flat_tree(seed=100, config=RandomTreeConfig(nodes=45))
        forest.replace_tree(2, replacement)
        times = forest.solve_batch(count=1)
        window = forest.tree_slice(2)
        np.testing.assert_allclose(
            times.tde[0, window], replacement.solve().tde, rtol=1e-12, atol=0
        )
