"""Unit tests for the array-backed flat-tree engine."""

import numpy as np
import pytest

from repro.core.exceptions import (
    ElementValueError,
    TopologyError,
    UnknownNodeError,
)
from repro.core.networks import figure7_tree, rc_ladder, single_line
from repro.core.timeconstants import characteristic_times, characteristic_times_all
from repro.core.tree import RCTree
from repro.flat import FlatTree
from repro.generators.random_trees import RandomTreeConfig, random_tree


class TestCompile:
    def test_figure7_matches_direct_computation(self):
        tree = figure7_tree()
        flat = FlatTree.from_tree(tree)
        reference = characteristic_times(tree, "out")
        result = flat.characteristic_times("out")
        assert result.tp == pytest.approx(reference.tp, rel=1e-12)
        assert result.tde == pytest.approx(reference.tde, rel=1e-12)
        assert result.tre == pytest.approx(reference.tre, rel=1e-12)
        assert result.ree == reference.ree
        assert result.total_capacitance == pytest.approx(reference.total_capacitance)

    def test_preorder_layout(self):
        tree = RCTree("in")
        tree.add_resistor("in", "a", 1.0)
        tree.add_resistor("a", "b", 1.0)
        tree.add_resistor("a", "c", 1.0)
        flat = FlatTree.from_tree(tree)
        assert flat.names == ["in", "a", "b", "c"]
        assert flat.root == "in"
        assert len(flat) == 4
        assert "b" in flat and "zz" not in flat
        assert flat.name_of(flat.index("c")) == "c"

    def test_outputs_preserved(self):
        tree = figure7_tree()
        flat = FlatTree.from_tree(tree)
        assert flat.outputs == tree.outputs

    def test_unknown_output_raises(self):
        flat = FlatTree.from_tree(figure7_tree())
        with pytest.raises(UnknownNodeError):
            flat.characteristic_times("nope")

    def test_disconnected_node_rejected(self):
        tree = RCTree("in")
        tree.add_resistor("in", "a", 1.0)
        tree.add_node("floating")
        with pytest.raises(TopologyError):
            FlatTree.from_tree(tree)

    def test_aggregates_match_tree(self):
        tree = figure7_tree()
        flat = FlatTree.from_tree(tree)
        assert flat.total_capacitance == pytest.approx(tree.total_capacitance)
        for name in tree.nodes:
            assert flat.downstream_capacitance(name) == pytest.approx(
                tree.subtree_capacitance(name)
            )

    def test_path_resistance(self):
        tree = figure7_tree()
        flat = FlatTree.from_tree(tree)
        assert flat.path_resistance("out") == pytest.approx(18.0)
        assert flat.path_resistance("b") == pytest.approx(23.0)


class TestFromArrays:
    def test_matches_rctree_build(self):
        tree = RCTree("in")
        tree.add_resistor("in", "n1", 10.0)
        tree.add_line("n1", "n2", 5.0, 2.0)
        tree.add_capacitor("n1", 1.0)
        tree.add_capacitor("n2", 3.0)
        reference = FlatTree.from_tree(tree)
        built = FlatTree.from_arrays(
            [-1, 0, 1], [0.0, 10.0, 5.0], [0.0, 0.0, 2.0], [0.0, 1.0, 3.0],
            names=["in", "n1", "n2"],
        )
        for name in tree.nodes:
            a = reference.characteristic_times(name)
            b = built.characteristic_times(name)
            assert b.tde == a.tde and b.tre == a.tre and b.tp == a.tp

    def test_non_preorder_input_is_relabelled(self):
        # Creation order: n2 hangs off n1 *after* n3 attached to the root.
        built = FlatTree.from_arrays(
            [-1, 0, 0, 1],
            [0.0, 1.0, 2.0, 4.0],
            [0.0, 0.0, 0.0, 0.0],
            [0.0, 1e-12, 2e-12, 3e-12],
            names=["in", "a", "b", "c"],
        )
        tree = RCTree("in")
        tree.add_resistor("in", "a", 1.0)
        tree.add_resistor("in", "b", 2.0)
        tree.add_resistor("a", "c", 4.0)
        tree.add_capacitor("a", 1e-12)
        tree.add_capacitor("b", 2e-12)
        tree.add_capacitor("c", 3e-12)
        reference = characteristic_times_all(tree, tree.nodes)
        for name in ("a", "b", "c"):
            assert built.characteristic_times(name).tde == reference[name].tde
        # Subtree-slice updates must work on the relabelled layout.
        built.update_resistance("a", 8.0)
        assert built.path_resistance("c") == pytest.approx(12.0)

    def test_default_outputs_are_leaves(self):
        flat = FlatTree.from_arrays(
            [-1, 0, 1, 1], [0.0, 1.0, 1.0, 1.0], [0.0] * 4, [0.0, 0.0, 1.0, 1.0]
        )
        assert flat.outputs == ["n2", "n3"]

    def test_bad_topology_rejected(self):
        with pytest.raises(TopologyError):
            FlatTree.from_arrays([-1, 2, 1], [0.0, 1.0, 1.0], [0.0] * 3, [0.0] * 3)
        with pytest.raises(TopologyError):
            FlatTree.from_arrays([0, 0], [0.0, 1.0], [0.0] * 2, [0.0] * 2)
        with pytest.raises(ElementValueError):
            FlatTree.from_arrays([-1, 0], [0.0, -1.0], [0.0] * 2, [0.0] * 2)


class TestAllOutputs:
    def test_matches_dict_engine_on_ladder(self):
        tree = rc_ladder(50, 10.0, 1e-12)
        flat = FlatTree.from_tree(tree)
        reference = characteristic_times_all(tree, tree.nodes)
        result = flat.characteristic_times_all(tree.nodes)
        assert set(result) == set(reference)
        for name, expected in reference.items():
            assert result[name].tde == expected.tde
            assert result[name].tre == expected.tre
            assert result[name].ree == expected.ree

    def test_default_output_selection_matches_dict_engine(self):
        tree = random_tree(7, RandomTreeConfig(nodes=40))
        flat = FlatTree.from_tree(tree)
        assert set(flat.characteristic_times_all()) == set(characteristic_times_all(tree))

    def test_single_line_closed_forms(self):
        tree = single_line(1000.0, 1e-12)
        flat = FlatTree.from_tree(tree)
        times = flat.characteristic_times("out")
        rc = 1000.0 * 1e-12
        assert times.tp == pytest.approx(rc / 2.0)
        assert times.tde == pytest.approx(rc / 2.0)
        assert times.tre == pytest.approx(rc / 3.0)

    def test_elmore_delays_helper(self):
        tree = figure7_tree()
        flat = FlatTree.from_tree(tree)
        delays = flat.elmore_delays(tree.nodes)
        reference = characteristic_times_all(tree, tree.nodes)
        assert delays == {name: ct.tde for name, ct in reference.items()}

    def test_ordering_invariant_holds(self):
        for seed in range(10):
            flat = FlatTree.from_tree(random_tree(seed, RandomTreeConfig(nodes=60)))
            for record in flat.characteristic_times_all().values():
                record.check_ordering()


class TestSolveCaching:
    def test_solve_is_cached_until_edit(self):
        flat = FlatTree.from_tree(figure7_tree())
        first = flat.solve()
        assert flat.solve() is first
        flat.update_capacitance("b", 8.0)
        assert flat.solve() is not first

    def test_no_op_update_keeps_cache(self):
        flat = FlatTree.from_tree(figure7_tree())
        first = flat.solve()
        flat.update_capacitance("b", 7.0)  # unchanged value
        assert flat.solve() is first
