"""FlatForest batching must agree with per-tree analysis."""

import numpy as np
import pytest

from repro.core.exceptions import DegenerateNetworkError
from repro.core.timeconstants import characteristic_times_all
from repro.core.tree import RCTree
from repro.flat import FlatForest, FlatTree
from repro.generators.random_trees import (
    RandomTreeConfig,
    random_forest,
    random_tree,
)

CONFIG = RandomTreeConfig(nodes=35, distributed_fraction=0.4)


@pytest.fixture(scope="module")
def batch():
    trees = [random_tree(seed, CONFIG) for seed in range(8)]
    return trees, FlatForest.from_rctrees(trees)


class TestSolve:
    def test_matches_dict_engine_per_tree(self, batch):
        trees, forest = batch
        for index, tree in enumerate(trees):
            reference = characteristic_times_all(tree, tree.nodes)
            for name, want in reference.items():
                got = forest.characteristic_times(index, name)
                assert got.tde == want.tde
                assert got.tre == want.tre
                assert got.ree == want.ree
                assert got.tp == pytest.approx(want.tp, rel=1e-12)
                assert got.total_capacitance == pytest.approx(
                    want.total_capacitance, rel=1e-12
                )

    def test_matches_single_flat_tree_solve(self, batch):
        trees, forest = batch
        for index, tree in enumerate(trees):
            single = FlatTree.from_tree(tree).solve()
            view = forest.times_for(index)
            np.testing.assert_array_equal(view.tde, single.tde)
            np.testing.assert_array_equal(view.tre, single.tre)
            np.testing.assert_array_equal(view.ree, single.ree)
            assert view.tp == pytest.approx(single.tp, rel=1e-12)

    def test_counts(self, batch):
        trees, forest = batch
        assert len(forest) == len(trees)
        assert forest.node_count == sum(len(t) + 0 for t in trees)
        assert len(forest.output_indices) == sum(len(t.outputs) for t in trees)

    def test_output_labels_cover_every_tree(self, batch):
        trees, forest = batch
        labels = forest.output_labels()
        for index, tree in enumerate(trees):
            assert {name for t, name in labels if t == index} == set(tree.outputs)


class TestBatchedBounds:
    def test_bounds_match_member_trees(self, batch):
        trees, forest = batch
        thresholds = [0.1, 0.5, 0.9]
        labels, lower, upper = forest.delay_bounds_batch(thresholds)
        for k, (index, name) in enumerate(labels):
            single = FlatTree.from_tree(trees[index])
            _, slo, shi = single.delay_bounds_batch(thresholds, [name])
            np.testing.assert_allclose(lower[k], slo[0], rtol=1e-12)
            np.testing.assert_allclose(upper[k], shi[0], rtol=1e-12)

    def test_voltage_bounds_shapes(self, batch):
        _, forest = batch
        times = np.linspace(0.0, 1e-9, 5)
        labels, vmin, vmax = forest.voltage_bounds_batch(times)
        assert vmin.shape == vmax.shape == (len(labels), 5)
        assert np.all(vmin <= vmax)

    def test_elmore_delays_keyed_by_tree_and_name(self, batch):
        trees, forest = batch
        delays = forest.elmore_delays()
        for index, tree in enumerate(trees):
            reference = characteristic_times_all(tree)
            for name, want in reference.items():
                assert delays[(index, name)] == want.tde


class TestDegenerateMembers:
    def test_degenerate_tree_does_not_poison_healthy_queries(self):
        healthy = random_tree(0, CONFIG)
        dead = RCTree("in")
        dead.add_resistor("in", "a", 1.0)
        dead.mark_output("a")
        forest = FlatForest.from_rctrees([healthy, dead])
        healthy_indices = np.asarray(
            [forest.global_index(0, name) for name in healthy.outputs]
        )
        labels, lower, upper = forest.delay_bounds_batch([0.5], healthy_indices)
        assert all(tree_index == 0 for tree_index, _ in labels)
        assert np.all(lower <= upper)
        # Querying the capacitance-free member itself must still raise.
        with pytest.raises(DegenerateNetworkError):
            forest.delay_bounds_batch(
                [0.5], np.asarray([forest.global_index(1, "a")])
            )


class TestGenerators:
    def test_random_forest_members_match_random_tree(self):
        forest = random_forest(4, seed=11, config=CONFIG)
        for offset in range(4):
            tree = random_tree(11 + offset, CONFIG)
            reference = characteristic_times_all(tree, tree.nodes)
            for name, want in reference.items():
                got = forest.characteristic_times(offset, name)
                assert got.tde == want.tde

    def test_empty_forest_rejected(self):
        with pytest.raises(ValueError):
            FlatForest([])
        with pytest.raises(ValueError):
            random_forest(0)


class TestReplaceTree:
    def test_replace_changes_member_and_times(self):
        from repro.generators.random_trees import RandomTreeConfig, random_flat_tree

        config = RandomTreeConfig(nodes=12, branching_bias=0.7)
        forest = FlatForest([random_flat_tree(seed, config) for seed in range(4)])
        forest.solve()
        replacement = random_flat_tree(99, RandomTreeConfig(nodes=20, branching_bias=0.7))
        forest.replace_tree(2, replacement)
        assert forest.node_count == sum(len(t) for t in forest.trees)
        rebuilt = FlatForest(forest.trees)
        times_a = forest.solve()
        times_b = rebuilt.solve()
        np.testing.assert_allclose(times_a.tde, times_b.tde, rtol=1e-15)
        np.testing.assert_allclose(times_a.tp, times_b.tp, rtol=1e-15)

    def test_replace_out_of_range_rejected(self):
        from repro.generators.random_trees import random_flat_tree

        forest = FlatForest([random_flat_tree(0)])
        with pytest.raises(IndexError):
            forest.replace_tree(5, random_flat_tree(1))

    def test_replace_preserves_other_members_bitwise(self):
        from repro.generators.random_trees import RandomTreeConfig, random_flat_tree

        config = RandomTreeConfig(nodes=10, branching_bias=0.5)
        forest = FlatForest([random_flat_tree(seed, config) for seed in range(3)])
        before = forest.solve()
        first = forest.tree_slice(0)
        forest.replace_tree(2, random_flat_tree(50, config))
        after = forest.solve()
        np.testing.assert_array_equal(before.tde[first], after.tde[first])
