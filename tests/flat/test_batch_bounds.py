"""Batched eqs. (8)-(17) must match the scalar reference elementwise."""

import numpy as np
import pytest

from repro.core.bounds import (
    delay_lower_bound,
    delay_upper_bound,
    voltage_lower_bound,
    voltage_upper_bound,
)
from repro.core.exceptions import AnalysisError, DegenerateNetworkError
from repro.core.timeconstants import CharacteristicTimes
from repro.flat import FlatTree
from repro.flat.batchbounds import (
    delay_bounds_batch,
    delay_lower_bound_batch,
    delay_upper_bound_batch,
    voltage_bounds_batch,
    voltage_lower_bound_batch,
    voltage_upper_bound_batch,
)
from repro.generators.random_trees import RandomTreeConfig, random_tree

THRESHOLDS = np.linspace(0.01, 0.99, 23)
SAMPLE_TIMES = np.linspace(0.0, 5e-9, 17)


def all_times(seed):
    tree = random_tree(seed, RandomTreeConfig(nodes=50, distributed_fraction=0.4))
    flat = FlatTree.from_tree(tree)
    return flat, list(flat.characteristic_times_all(flat.names[1:]).values())


@pytest.mark.parametrize("seed", range(5))
class TestAgainstScalarReference:
    def test_delay_bounds(self, seed):
        _, records = all_times(seed)
        tp = np.asarray([t.tp for t in records])
        tde = np.asarray([t.tde for t in records])
        tre = np.asarray([t.tre for t in records])
        lower, upper = delay_bounds_batch(tp, tde, tre, THRESHOLDS)
        assert lower.shape == upper.shape == (len(records), len(THRESHOLDS))
        for k, record in enumerate(records):
            np.testing.assert_array_equal(
                lower[k], np.atleast_1d(delay_lower_bound(record, THRESHOLDS))
            )
            np.testing.assert_array_equal(
                upper[k], np.atleast_1d(delay_upper_bound(record, THRESHOLDS))
            )

    def test_voltage_bounds(self, seed):
        _, records = all_times(seed)
        tp = np.asarray([t.tp for t in records])
        tde = np.asarray([t.tde for t in records])
        tre = np.asarray([t.tre for t in records])
        vmin, vmax = voltage_bounds_batch(tp, tde, tre, SAMPLE_TIMES)
        for k, record in enumerate(records):
            np.testing.assert_array_equal(
                vmin[k], np.atleast_1d(voltage_lower_bound(record, SAMPLE_TIMES))
            )
            np.testing.assert_array_equal(
                vmax[k], np.atleast_1d(voltage_upper_bound(record, SAMPLE_TIMES))
            )


class TestDegenerateSinks:
    def test_isolated_output_is_instantaneous(self):
        # tde == 0: the batch must report delay 0 and voltage 1, matching the
        # scalar implementation's special case.
        record = CharacteristicTimes(
            output="x", tp=1.0, tde=0.0, tre=0.0, ree=0.0, total_capacitance=1.0
        )
        lower = delay_lower_bound_batch([1.0], [0.0], [0.0], THRESHOLDS)
        upper = delay_upper_bound_batch([1.0], [0.0], [0.0], THRESHOLDS)
        np.testing.assert_array_equal(lower[0], np.atleast_1d(delay_lower_bound(record, THRESHOLDS)))
        np.testing.assert_array_equal(upper[0], np.atleast_1d(delay_upper_bound(record, THRESHOLDS)))
        vmin = voltage_lower_bound_batch([1.0], [0.0], [0.0], SAMPLE_TIMES)
        vmax = voltage_upper_bound_batch([1.0], [0.0], [0.0], SAMPLE_TIMES)
        assert np.all(vmin == 1.0) and np.all(vmax == 1.0)

    def test_zero_tre_output_at_input(self):
        record = CharacteristicTimes(
            output="x", tp=2.0, tde=1.0, tre=0.0, ree=0.0, total_capacitance=1.0
        )
        vmax = voltage_upper_bound_batch([2.0], [1.0], [0.0], SAMPLE_TIMES)
        np.testing.assert_array_equal(
            vmax[0], np.atleast_1d(voltage_upper_bound(record, SAMPLE_TIMES))
        )

    def test_degenerate_network_rejected(self):
        with pytest.raises(DegenerateNetworkError):
            delay_lower_bound_batch([0.0], [0.0], [0.0], [0.5], total_capacitance=1.0)
        with pytest.raises(DegenerateNetworkError):
            delay_lower_bound_batch([1.0], [0.5], [0.1], [0.5], total_capacitance=0.0)


class TestValidation:
    def test_threshold_domain(self):
        for bad in ([1.0], [-0.1], [float("nan")]):
            with pytest.raises(AnalysisError):
                delay_upper_bound_batch([1.0], [0.5], [0.1], bad)

    def test_time_domain(self):
        with pytest.raises(AnalysisError):
            voltage_upper_bound_batch([1.0], [0.5], [0.1], [-1.0])
        with pytest.raises(AnalysisError):
            voltage_lower_bound_batch([1.0], [0.5], [0.1], [float("inf")])

    def test_two_dimensional_times_rejected(self):
        with pytest.raises(AnalysisError):
            delay_upper_bound_batch([[1.0]], [[0.5]], [[0.1]], [0.5])


class TestFlatTreeFacade:
    def test_delay_bounds_batch_on_tree(self):
        tree = random_tree(1, RandomTreeConfig(nodes=30))
        flat = FlatTree.from_tree(tree)
        names, lower, upper = flat.delay_bounds_batch(THRESHOLDS)
        assert names == flat.outputs
        assert lower.shape == (len(names), len(THRESHOLDS))
        assert np.all(lower <= upper)

    def test_voltage_bounds_batch_on_tree(self):
        tree = random_tree(2, RandomTreeConfig(nodes=30))
        flat = FlatTree.from_tree(tree)
        names, vmin, vmax = flat.voltage_bounds_batch(SAMPLE_TIMES)
        assert np.all(vmin <= vmax)
        assert np.all((0.0 <= vmin) & (vmax <= 1.0))

    def test_explicit_output_selection_preserves_order(self):
        tree = random_tree(3, RandomTreeConfig(nodes=30))
        flat = FlatTree.from_tree(tree)
        wanted = list(reversed(flat.outputs))
        names, lower, _ = flat.delay_bounds_batch([0.5], wanted)
        assert names == wanted
        assert lower.shape == (len(wanted), 1)
