"""Incremental updates must agree with a full recompile/recompute."""

import random

import pytest

from repro.core.exceptions import ElementValueError, TopologyError
from repro.core.networks import figure7_tree
from repro.core.timeconstants import characteristic_times_all
from repro.core.tree import RCTree
from repro.flat import FlatTree
from repro.generators.random_trees import RandomTreeConfig, random_tree

RTOL = 1e-12


def assert_matches_fresh(flat: FlatTree, tree: RCTree):
    """Every output of ``flat`` equals a from-scratch dict-engine analysis."""
    reference = characteristic_times_all(tree, tree.nodes)
    # Path-walk queries (before any full solve)...
    for name in tree.nodes:
        got = flat.characteristic_times(name)
        want = reference[name]
        assert got.tde == pytest.approx(want.tde, rel=RTOL, abs=1e-30)
        assert got.tre == pytest.approx(want.tre, rel=RTOL, abs=1e-30)
        assert got.tp == pytest.approx(want.tp, rel=RTOL, abs=1e-30)
        assert got.ree == pytest.approx(want.ree, rel=RTOL, abs=1e-30)
    # ...and the vectorized full solve.
    solved = flat.characteristic_times_all(tree.nodes)
    for name, want in reference.items():
        assert solved[name].tde == pytest.approx(want.tde, rel=RTOL, abs=1e-30)
        assert solved[name].tre == pytest.approx(want.tre, rel=RTOL, abs=1e-30)


class TestSingleEdits:
    def test_node_capacitance_update(self):
        tree = figure7_tree()
        flat = FlatTree.from_tree(tree)
        flat.solve()
        flat.update_capacitance("b", 70.0)
        tree.set_capacitance("b", 70.0)
        assert_matches_fresh(flat, tree)

    def test_edge_resistance_update(self):
        tree = figure7_tree()
        flat = FlatTree.from_tree(tree)
        flat.update_resistance("a", 150.0)
        assert flat.path_resistance("out") == pytest.approx(153.0)
        assert flat.path_resistance("b") == pytest.approx(158.0)
        # The dict reference cannot edit in place; rebuild the same network.
        rebuilt = RCTree("in")
        rebuilt.add_resistor("in", "a", 150.0)
        rebuilt.add_capacitor("a", 2.0)
        rebuilt.add_resistor("a", "b", 8.0)
        rebuilt.add_capacitor("b", 7.0)
        rebuilt.add_line("a", "out", resistance=3.0, capacitance=4.0)
        rebuilt.add_capacitor("out", 9.0)
        rebuilt.mark_output("out")
        assert_matches_fresh(flat, rebuilt)

    def test_line_update_moves_distributed_capacitance(self):
        tree = figure7_tree()
        flat = FlatTree.from_tree(tree)
        flat.update_line("out", 30.0, 40.0)
        rebuilt = RCTree("in")
        rebuilt.add_resistor("in", "a", 15.0)
        rebuilt.add_capacitor("a", 2.0)
        rebuilt.add_resistor("a", "b", 8.0)
        rebuilt.add_capacitor("b", 7.0)
        rebuilt.add_line("a", "out", resistance=30.0, capacitance=40.0)
        rebuilt.add_capacitor("out", 9.0)
        rebuilt.mark_output("out")
        assert_matches_fresh(flat, rebuilt)

    def test_total_capacitance_tracks_edits(self):
        flat = FlatTree.from_tree(figure7_tree())
        before = flat.total_capacitance
        flat.update_capacitance("b", 7.0 + 1.0)
        assert flat.total_capacitance == pytest.approx(before + 1.0)
        flat.update_line("out", 3.0, 4.0 + 2.0)
        assert flat.total_capacitance == pytest.approx(before + 3.0)

    def test_invalid_updates_rejected(self):
        flat = FlatTree.from_tree(figure7_tree())
        with pytest.raises(ElementValueError):
            flat.update_capacitance("b", -1.0)
        with pytest.raises(ElementValueError):
            flat.update_resistance("a", float("nan"))
        with pytest.raises(TopologyError):
            flat.update_resistance("in", 1.0)


def random_edit_sequence(seed: int, edits: int, tree: RCTree, flat: FlatTree):
    """Apply the same random edits to the flat tree and to a rebuilt RCTree."""
    rng = random.Random(seed)
    nodes = [n for n in tree.nodes if n != tree.root]
    # Current (resistance, line capacitance) per edge, updated as we edit.
    state = {
        name: (tree.parent_edge(name).resistance, tree.parent_edge(name).capacitance)
        for name in nodes
    }
    edited = {}
    for _ in range(edits):
        name = rng.choice(nodes)
        kind = rng.choice(["cap", "res", "line"])
        if kind == "cap":
            value = rng.uniform(1e-15, 1e-12)
            flat.update_capacitance(name, value)
            tree.set_capacitance(name, value)
        elif kind == "res":
            value = rng.uniform(1.0, 1000.0)
            flat.update_resistance(name, value)
            state[name] = (value, state[name][1])
            edited[name] = ("edge",) + state[name]
        else:
            r = rng.uniform(1.0, 1000.0)
            c = rng.uniform(1e-15, 1e-12)
            flat.update_line(name, r, c)
            state[name] = (r, c)
            edited[name] = ("edge",) + state[name]
    return edited


def rebuild_with_edits(tree: RCTree, edited: dict) -> RCTree:
    """Rebuild the RCTree with the edited edge values applied."""
    clone = RCTree(tree.root)
    for name in tree.nodes:
        if name == tree.root:
            clone.node(tree.root).capacitance = tree.node_capacitance(tree.root)
            continue
        edge = tree.parent_edge(name)
        if name in edited:
            _, r, c = edited[name]
            if c > 0.0:
                clone.add_line(edge.parent, name, r, c)
            else:
                clone.add_resistor(edge.parent, name, r)
        else:
            clone.add_element(edge.parent, name, edge.element)
        clone.set_capacitance(name, tree.node_capacitance(name))
        if tree.node(name).is_output:
            clone.mark_output(name)
    return clone


class TestRandomEditSequences:
    @pytest.mark.parametrize("seed", range(6))
    def test_incremental_equals_full_recompute(self, seed):
        config = RandomTreeConfig(nodes=40, distributed_fraction=0.5)
        tree = random_tree(seed, config)
        flat = FlatTree.from_tree(tree)
        flat.solve()  # start from a solved state so caching is exercised
        edited = random_edit_sequence(seed * 101 + 7, 30, tree, flat)
        reference_tree = rebuild_with_edits(tree, edited)
        assert_matches_fresh(flat, reference_tree)
        # And against a freshly compiled flat tree of the edited network.
        fresh = FlatTree.from_tree(reference_tree)
        got = flat.solve()
        want = fresh.solve()
        assert got.tde == pytest.approx(want.tde, rel=RTOL, abs=1e-30)
        assert got.tre == pytest.approx(want.tre, rel=RTOL, abs=1e-30)
        assert got.tp == pytest.approx(want.tp, rel=RTOL)

    def test_refresh_rebaselines_caches(self):
        tree = random_tree(3, RandomTreeConfig(nodes=30))
        flat = FlatTree.from_tree(tree)
        random_edit_sequence(11, 50, tree.copy(), flat)
        before = flat.solve().tde.copy()
        flat.refresh()
        after = flat.solve().tde
        assert after == pytest.approx(before, rel=1e-12, abs=1e-30)
