"""Tests for the static-timing analysis engine."""

import pytest

from repro.core.certify import Verdict
from repro.core.exceptions import AnalysisError
from repro.core.networks import rc_ladder
from repro.sta.analysis import TimingAnalyzer
from repro.sta.cells import standard_cell_library
from repro.sta.delaycalc import DelayModel
from repro.sta.netlist import Design
from repro.sta.parasitics import lumped, rc_tree_parasitics


@pytest.fixture
def library():
    return standard_cell_library()


def pipeline_design(library):
    """DFF -> INV -> NAND2 -> DFF with a primary output tap."""
    design = Design("pipeline")
    design.add_clock("clk")
    design.add_primary_input("din")
    design.add_primary_output("dout")
    design.add_instance("ff_in", library["DFF_X1"], D="din", CK="clk", Q="q0")
    design.add_instance("u1", library["INV_X1"], A="q0", Y="n1")
    design.add_instance("u2", library["NAND2_X1"], A="n1", B="q0", Y="n2")
    design.add_instance("u3", library["BUF_X2"], A="n2", Y="dout")
    design.add_instance("ff_out", library["DFF_X1"], D="n2", CK="clk", Q="q1")
    design.add_primary_output("q1")
    return design


def combinational_design(library):
    design = Design("comb")
    design.add_primary_input("a")
    design.add_primary_input("b")
    design.add_primary_output("y")
    design.add_instance("g1", library["NAND2_X1"], A="a", B="b", Y="n1")
    design.add_instance("g2", library["INV_X1"], A="n1", Y="y")
    return design


class TestTimingRun:
    def test_arrival_times_increase_along_path(self, library):
        analyzer = TimingAnalyzer(pipeline_design(library), clock_period=2e-9)
        report = analyzer.run()
        assert report.arrivals["u1/A"] < report.arrivals["u1/Y"]
        assert report.arrivals["u1/Y"] < report.arrivals["u2/Y"]

    def test_endpoints_are_outputs_and_ff_d_pins(self, library):
        analyzer = TimingAnalyzer(pipeline_design(library), clock_period=2e-9)
        report = analyzer.run()
        assert set(report.endpoint_slacks) == {"dout", "q1", "ff_in/D", "ff_out/D"}

    def test_worst_slack_matches_minimum(self, library):
        analyzer = TimingAnalyzer(pipeline_design(library), clock_period=2e-9)
        report = analyzer.run()
        assert report.worst_slack == pytest.approx(min(report.endpoint_slacks.values()))
        assert report.endpoint_slacks[report.worst_endpoint] == report.worst_slack

    def test_critical_path_starts_at_startpoint_and_ends_at_worst_endpoint(self, library):
        analyzer = TimingAnalyzer(pipeline_design(library), clock_period=2e-9)
        report = analyzer.run()
        assert report.critical_path[0].arc == "startpoint"
        assert report.critical_path[-1].location == report.worst_endpoint

    def test_meets_timing_depends_on_period(self, library):
        design = pipeline_design(library)
        fast_clock = TimingAnalyzer(design, clock_period=1e-12).run()
        slow_clock = TimingAnalyzer(design, clock_period=1e-6).run()
        assert not fast_clock.meets_timing
        assert slow_clock.meets_timing

    def test_describe_mentions_slack(self, library):
        report = TimingAnalyzer(pipeline_design(library), clock_period=2e-9).run()
        assert "worst slack" in report.describe()

    def test_combinational_design(self, library):
        report = TimingAnalyzer(combinational_design(library), clock_period=1e-9).run()
        assert set(report.endpoint_slacks) == {"y"}
        assert report.meets_timing


class TestParasiticsEffect:
    def test_heavier_net_lowers_slack(self, library):
        design = pipeline_design(library)
        light = TimingAnalyzer(design, {"n2": lumped("n2", 1e-15)}, clock_period=2e-9).run()
        heavy = TimingAnalyzer(design, {"n2": lumped("n2", 500e-15)}, clock_period=2e-9).run()
        assert heavy.worst_slack < light.worst_slack

    def test_rc_tree_parasitics_used(self, library):
        design = pipeline_design(library)
        tree = rc_ladder(5, 500.0, 20e-15)
        parasitics = {"n2": rc_tree_parasitics("n2", tree, {"u3/A": "out", "ff_out/D": "s1"})}
        report = TimingAnalyzer(design, parasitics, clock_period=2e-9).run()
        # u3 is bound to the far end of the ladder, ff_out to the near end.
        net_delay_to_u3 = report.arrivals["u3/A"] - report.arrivals["u2/Y"]
        net_delay_to_ff = report.arrivals["ff_out/D"] - report.arrivals["u2/Y"]
        assert net_delay_to_u3 > net_delay_to_ff

    def test_default_wire_capacitance_applied(self, library):
        design = pipeline_design(library)
        without = TimingAnalyzer(design, clock_period=2e-9).run()
        with_default = TimingAnalyzer(
            design, clock_period=2e-9, default_wire_capacitance=100e-15
        ).run()
        assert with_default.worst_slack < without.worst_slack


class TestDelayModels:
    def test_upper_bound_never_faster_than_lower_bound(self, library):
        design = pipeline_design(library)
        parasitics = {"n2": rc_tree_parasitics("n2", rc_ladder(5, 500.0, 20e-15), {"u3/A": "out"})}
        analyzer = TimingAnalyzer(design, parasitics, clock_period=2e-9)
        upper = analyzer.run(DelayModel.UPPER_BOUND)
        lower = analyzer.run(DelayModel.LOWER_BOUND)
        assert upper.worst_slack <= lower.worst_slack + 1e-15


class TestCertification:
    def test_pass_fail_and_indeterminate(self, library):
        design = pipeline_design(library)
        parasitics = {"n2": rc_tree_parasitics("n2", rc_ladder(5, 2000.0, 100e-15), {"u3/A": "out"})}
        assert TimingAnalyzer(design, parasitics, clock_period=1e-6).certify() is Verdict.PASS
        assert TimingAnalyzer(design, parasitics, clock_period=1e-12).certify() is Verdict.FAIL

    def test_indeterminate_when_bounds_straddle_period(self, library):
        design = pipeline_design(library)
        parasitics = {
            "n2": rc_tree_parasitics("n2", rc_ladder(8, 5000.0, 300e-15), {"u3/A": "out"})
        }
        analyzer = TimingAnalyzer(design, parasitics, clock_period=1e-9, threshold=0.5)
        upper = analyzer.run(DelayModel.UPPER_BOUND)
        lower = analyzer.run(DelayModel.LOWER_BOUND)
        # Pick a period strictly between the two worst arrivals to force the
        # indeterminate verdict.
        worst_upper_arrival = analyzer._clock_period - upper.worst_slack
        worst_lower_arrival = analyzer._clock_period - lower.worst_slack
        period = 0.5 * (worst_upper_arrival + worst_lower_arrival)
        middle = TimingAnalyzer(design, parasitics, clock_period=period, threshold=0.5)
        assert middle.certify() is Verdict.INDETERMINATE


class TestValidation:
    def test_zero_period_rejected(self, library):
        with pytest.raises(AnalysisError):
            TimingAnalyzer(combinational_design(library), clock_period=0.0)

    def test_combinational_loop_detected(self, library):
        design = Design("loop")
        design.add_primary_output("y")
        design.add_instance("g1", library["INV_X1"], A="n2", Y="n1")
        design.add_instance("g2", library["INV_X1"], A="n1", Y="n2")
        design.add_instance("g3", library["INV_X1"], A="n2", Y="y")
        analyzer = TimingAnalyzer(design, clock_period=1e-9)
        with pytest.raises(AnalysisError):
            analyzer.run()
