"""Tests for the gate-level design netlist."""

import pytest

from repro.core.exceptions import TopologyError
from repro.sta.cells import standard_cell_library
from repro.sta.netlist import Design, PinRef


@pytest.fixture
def library():
    return standard_cell_library()


def two_gate_design(library):
    design = Design("two_gates")
    design.add_primary_input("a")
    design.add_primary_input("b")
    design.add_primary_output("y")
    design.add_instance("u1", library["NAND2_X1"], A="a", B="b", Y="n1")
    design.add_instance("u2", library["INV_X1"], A="n1", Y="y")
    return design


class TestPinRef:
    def test_port_reference(self):
        ref = PinRef(None, "a")
        assert ref.is_port
        assert str(ref) == "a"

    def test_instance_reference(self):
        ref = PinRef("u1", "A")
        assert not ref.is_port
        assert str(ref) == "u1/A"


class TestDesign:
    def test_instances_registered(self, library):
        design = two_gate_design(library)
        assert set(design.instances) == {"u1", "u2"}
        assert design.instances["u1"].net_of("Y") == "n1"

    def test_duplicate_instance_rejected(self, library):
        design = two_gate_design(library)
        with pytest.raises(TopologyError):
            design.add_instance("u1", library["INV_X1"], A="a", Y="z")

    def test_unconnected_pin_rejected(self, library):
        design = Design("d")
        with pytest.raises(TopologyError):
            design.add_instance("u1", library["NAND2_X1"], A="a", Y="y")

    def test_unknown_pin_rejected(self, library):
        design = Design("d")
        with pytest.raises(TopologyError):
            design.add_instance("u1", library["INV_X1"], A="a", Y="y", Z="zz")

    def test_primary_io_lists(self, library):
        design = two_gate_design(library)
        assert design.primary_inputs == ["a", "b"]
        assert design.primary_outputs == ["y"]

    def test_clock_is_also_primary_input(self, library):
        design = two_gate_design(library)
        design.add_clock("clk")
        assert "clk" in design.clocks
        assert "clk" in design.primary_inputs

    def test_connectivity_drivers_and_loads(self, library):
        design = two_gate_design(library)
        nets = design.connectivity()
        assert str(nets["n1"].driver) == "u1/Y"
        assert [str(load) for load in nets["n1"].loads] == ["u2/A"]
        assert str(nets["a"].driver) == "a"
        assert [str(load) for load in nets["y"].loads] == ["y"]

    def test_multiply_driven_net_rejected(self, library):
        design = two_gate_design(library)
        design.add_instance("u3", library["INV_X1"], A="a", Y="n1")
        with pytest.raises(TopologyError):
            design.connectivity()

    def test_undriven_net_rejected(self, library):
        design = Design("d")
        design.add_instance("u1", library["INV_X1"], A="floating", Y="y")
        design.add_primary_output("y")
        with pytest.raises(TopologyError):
            design.validate()


class TestJsonInterchange:
    def test_roundtrip_preserves_structure(self, library):
        from repro.sta.netlist import design_from_dict, design_to_dict

        design = Design("rt")
        design.add_clock("clk")
        design.add_primary_input("a")
        design.add_primary_output("y")
        design.add_instance("u1", library["INV_X1"], A="a", Y="y")
        rebuilt = design_from_dict(design_to_dict(design), library)
        assert design_to_dict(rebuilt) == design_to_dict(design)
        rebuilt.validate()

    def test_file_roundtrip(self, tmp_path, library):
        from repro.sta.netlist import design_to_dict, load_design, write_design

        design = Design("file_rt")
        design.add_primary_input("a")
        design.add_primary_output("y")
        design.add_instance("u1", library["BUF_X2"], A="a", Y="y")
        path = tmp_path / "d.json"
        write_design(design, path)
        assert design_to_dict(load_design(path)) == design_to_dict(design)

    def test_unknown_cell_raises_parse_error(self):
        from repro.core.exceptions import ParseError
        from repro.sta.netlist import design_from_dict

        data = {"instances": {"u1": {"cell": "NOPE", "connections": {}}}}
        with pytest.raises(ParseError):
            design_from_dict(data)

    def test_non_mapping_instance_record_raises_parse_error(self):
        from repro.core.exceptions import ParseError
        from repro.sta.netlist import design_from_dict

        with pytest.raises(ParseError):
            design_from_dict({"instances": {"u1": "INV_X1"}})
        with pytest.raises(ParseError):
            design_from_dict(
                {"instances": {"u1": {"cell": "INV_X1", "connections": "A=a"}}}
            )
        with pytest.raises(ParseError):
            design_from_dict({"instances": ["u1"]})
