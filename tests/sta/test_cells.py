"""Tests for the miniature standard-cell library."""

import pytest

from repro.sta.cells import Cell, standard_cell_library


class TestCell:
    def test_pins(self):
        cell = Cell("AND2_X1", ("A", "B"), "Y", 1e-15, 1e3, 1e-11)
        assert cell.pins == ("A", "B", "Y")

    def test_sequential_cell_pins_include_clock(self):
        library = standard_cell_library()
        dff = library["DFF_X1"]
        assert dff.is_sequential
        assert "CK" in dff.pins
        assert dff.clock_pin == "CK"

    def test_scaled_halves_resistance(self):
        cell = Cell("INV_X1", ("A",), "Y", 6e-15, 6e3, 4e-11)
        strong = cell.scaled(2.0)
        assert strong.drive_resistance == pytest.approx(3e3)
        assert strong.input_capacitance == pytest.approx(12e-15)
        assert strong.intrinsic_delay == cell.intrinsic_delay

    def test_validation(self):
        with pytest.raises(ValueError):
            Cell("BAD", (), "Y", 1e-15, 1e3, 1e-11)
        with pytest.raises(ValueError):
            Cell("BAD", ("A",), "Y", 1e-15, 0.0, 1e-11)
        with pytest.raises(ValueError):
            Cell("BAD", ("A",), "Y", -1e-15, 1e3, 1e-11)


class TestLibrary:
    def test_expected_cells_present(self):
        library = standard_cell_library()
        for name in ("INV_X1", "INV_X4", "NAND2_X1", "NOR2_X2", "BUF_X2", "DFF_X1"):
            assert name in library

    def test_names_match_keys(self):
        library = standard_cell_library()
        for name, cell in library.items():
            assert cell.name == name

    def test_strength_scaling_within_family(self):
        library = standard_cell_library()
        assert library["INV_X4"].drive_resistance == pytest.approx(
            library["INV_X1"].drive_resistance / 4.0
        )
        assert library["INV_X4"].input_capacitance == pytest.approx(
            library["INV_X1"].input_capacitance * 4.0
        )

    def test_nor_weaker_than_nand(self):
        library = standard_cell_library()
        assert (
            library["NOR2_X1"].drive_resistance > library["NAND2_X1"].drive_resistance
        )

    def test_combinational_cells_not_sequential(self):
        library = standard_cell_library()
        assert not library["NAND2_X1"].is_sequential
