"""Tests for stage delay calculation."""

import math

import pytest

from repro.core.networks import rc_ladder
from repro.sta.cells import standard_cell_library
from repro.sta.delaycalc import DelayModel, stage_delays
from repro.sta.parasitics import lumped, rc_tree_parasitics


@pytest.fixture
def library():
    return standard_cell_library()


class TestLumpedStage:
    def test_elmore_delay_is_r_times_c(self, library):
        inv = library["INV_X1"]
        stage = stage_delays(inv, lumped("n1", 10e-15), {"u2/A": 6e-15})
        expected = inv.drive_resistance * 16e-15
        assert stage.wire_delays["u2/A"] == pytest.approx(expected)
        assert stage.gate_delay == pytest.approx(inv.intrinsic_delay)
        assert stage.total("u2/A") == pytest.approx(inv.intrinsic_delay + expected)

    def test_bound_models_give_log_form_for_single_rc(self, library):
        inv = library["INV_X1"]
        threshold = 0.5
        upper = stage_delays(
            inv, lumped("n1", 10e-15), {"u2/A": 6e-15},
            model=DelayModel.UPPER_BOUND, threshold=threshold,
        )
        lower = stage_delays(
            inv, lumped("n1", 10e-15), {"u2/A": 6e-15},
            model=DelayModel.LOWER_BOUND, threshold=threshold,
        )
        exact = inv.drive_resistance * 16e-15 * math.log(2.0)
        assert upper.wire_delays["u2/A"] == pytest.approx(exact, rel=1e-9)
        assert lower.wire_delays["u2/A"] == pytest.approx(exact, rel=1e-9)

    def test_stronger_driver_is_faster(self, library):
        weak = stage_delays(library["INV_X1"], lumped("n", 20e-15), {"p": 6e-15})
        strong = stage_delays(library["INV_X4"], lumped("n", 20e-15), {"p": 6e-15})
        assert strong.wire_delays["p"] < weak.wire_delays["p"]

    def test_zero_capacitance_stage(self, library):
        stage = stage_delays(library["INV_X1"], lumped("n", 0.0), {"p": 0.0})
        assert stage.wire_delays["p"] == 0.0

    def test_ideal_port_driver(self):
        stage = stage_delays(None, lumped("n", 10e-15), {"p": 5e-15})
        assert stage.gate_delay == 0.0
        # Near-zero source resistance: negligible delay.
        assert stage.wire_delays["p"] < 1e-18


class TestDistributedStage:
    def test_sink_binding_affects_delay(self, library):
        tree = rc_ladder(4, 200.0, 10e-15)
        near = stage_delays(
            library["INV_X1"],
            rc_tree_parasitics("n", tree, {"p": "s1"}),
            {"p": 5e-15},
        )
        far = stage_delays(
            library["INV_X1"],
            rc_tree_parasitics("n", tree, {"p": "out"}),
            {"p": 5e-15},
        )
        assert far.wire_delays["p"] > near.wire_delays["p"]

    def test_unbound_pin_defaults_to_far_leaf(self, library):
        tree = rc_ladder(4, 200.0, 10e-15)
        implicit = stage_delays(
            library["INV_X1"], rc_tree_parasitics("n", tree, {}), {"p": 5e-15}
        )
        explicit = stage_delays(
            library["INV_X1"], rc_tree_parasitics("n", tree, {"p": "out"}), {"p": 5e-15}
        )
        assert implicit.wire_delays["p"] == pytest.approx(explicit.wire_delays["p"])

    def test_bounds_bracket_elmore_ordering(self, library):
        tree = rc_ladder(4, 200.0, 10e-15)
        parasitics = rc_tree_parasitics("n", tree, {"p": "out"})
        loads = {"p": 5e-15}
        lower = stage_delays(library["INV_X1"], parasitics, loads, model=DelayModel.LOWER_BOUND)
        upper = stage_delays(library["INV_X1"], parasitics, loads, model=DelayModel.UPPER_BOUND)
        assert lower.wire_delays["p"] <= upper.wire_delays["p"]

    def test_worst_sink(self, library):
        tree = rc_ladder(4, 200.0, 10e-15)
        parasitics = rc_tree_parasitics("n", tree, {"near": "s1", "far": "out"})
        stage = stage_delays(library["INV_X1"], parasitics, {"near": 5e-15, "far": 5e-15})
        assert stage.worst_sink == "far"

    def test_override_drive_resistance(self, library):
        tree = rc_ladder(2, 100.0, 10e-15)
        parasitics = rc_tree_parasitics("n", tree, {"p": "out"})
        weak = stage_delays(None, parasitics, {"p": 0.0}, drive_resistance_override=10e3)
        strong = stage_delays(None, parasitics, {"p": 0.0}, drive_resistance_override=10.0)
        assert weak.wire_delays["p"] > strong.wire_delays["p"]
