"""Tests for the per-net parasitics descriptions."""

import pytest

from repro.core.exceptions import UnknownNodeError
from repro.core.networks import rc_ladder
from repro.sta.parasitics import NetParasitics, lumped, rc_tree_parasitics


class TestLumped:
    def test_basic(self):
        parasitics = lumped("n1", 25e-15)
        assert not parasitics.is_distributed
        assert parasitics.wire_capacitance() == pytest.approx(25e-15)
        assert parasitics.node_for_pin("u1/A") is None

    def test_negative_capacitance_rejected(self):
        with pytest.raises(ValueError):
            lumped("n1", -1e-15)


class TestRCTreeParasitics:
    def test_basic(self):
        tree = rc_ladder(3, 100.0, 5e-15)
        parasitics = rc_tree_parasitics("n1", tree, {"u1/A": "out", "u2/A": "s1"})
        assert parasitics.is_distributed
        assert parasitics.wire_capacitance() == pytest.approx(15e-15)
        assert parasitics.node_for_pin("u1/A") == "out"
        assert parasitics.node_for_pin("unbound") is None

    def test_unknown_node_binding_rejected(self):
        tree = rc_ladder(3, 100.0, 5e-15)
        with pytest.raises(UnknownNodeError):
            rc_tree_parasitics("n1", tree, {"u1/A": "nonexistent"})
