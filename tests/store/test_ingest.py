"""Tests for streaming ingest: SPEF and generator blocks into shard
stores, with the transactional no-partial-store guarantee on malformed
input (strict-mode parse errors roll every shard file back)."""

import io
import os

import numpy as np
import pytest

from repro.core.exceptions import ParseError
from repro.generators import stream_random_nets
from repro.spef.reader import spef_to_forest
from repro.store import StoredForest, ingest_blocks, ingest_spef

RTOL = 1e-12

GOOD_SPEF = """
*SPEF "IEEE 1481-1998"
*T_UNIT 1 NS
*C_UNIT 1 FF
*R_UNIT 1 OHM

*D_NET n1 12.0
*CONN
*I u1/out O
*I u2/in I
*CAP
1 n1:1 4.0
2 u2/in 8.0
*RES
1 n1:0 n1:1 120.0
2 n1:1 u2/in 80.0
*END

*D_NET n2 6.0
*CONN
*I u2/out O
*I u3/in I
*CAP
1 u3/in 6.0
*RES
1 n2:0 u3/in 50.0
*END
"""

TRUNCATED_SPEF = GOOD_SPEF.rsplit("*END", 1)[0]

DUPLICATE_DRIVER_SPEF = GOOD_SPEF.replace("*I u2/in I", "*I u9/in I\n*I u2/in I")

UNTERMINATED_SPEF = GOOD_SPEF.replace("*END\n\n*D_NET n2", "\n*D_NET n2", 1)


class TestSpefIngest:
    def test_round_trip_matches_in_ram_forest(self, tmp_path):
        directory = str(tmp_path / "s")
        manifest, names = ingest_spef(GOOD_SPEF, directory)
        assert names == ["n1", "n2"]
        assert manifest.tree_count == 2

        forest, _ = spef_to_forest(GOOD_SPEF)
        expected = forest.solve()
        actual = StoredForest(directory).solve()
        for name in ("tde", "tre", "tp", "total_capacitance"):
            np.testing.assert_allclose(
                np.asarray(getattr(actual, name)),
                np.asarray(getattr(expected, name)),
                rtol=RTOL,
            )

    def test_file_handle_source_streams(self, tmp_path):
        spef_path = tmp_path / "design.spef"
        spef_path.write_text(GOOD_SPEF, encoding="utf-8")
        directory = str(tmp_path / "s")
        with open(spef_path, "r", encoding="utf-8") as handle:
            manifest, names = ingest_spef(handle, directory)
        assert names == ["n1", "n2"]
        string_dir = str(tmp_path / "s2")
        ingest_spef(GOOD_SPEF, string_dir)
        np.testing.assert_allclose(
            np.asarray(StoredForest(directory).solve().tde),
            np.asarray(StoredForest(string_dir).solve().tde),
            rtol=RTOL,
        )

    @pytest.mark.parametrize(
        "text",
        [TRUNCATED_SPEF, DUPLICATE_DRIVER_SPEF, UNTERMINATED_SPEF],
        ids=["mid-net-eof", "duplicate-driver", "missing-end"],
    )
    def test_malformed_spef_leaves_no_partial_store(self, tmp_path, text):
        directory = tmp_path / "s"
        with pytest.raises(ParseError):
            # Line-iterable source + tiny shards: the first net hits disk
            # before the malformation is reached, so this exercises the
            # rollback path, not just early validation.
            ingest_spef(io.StringIO(text), str(directory), shard_nodes=2)
        assert not directory.exists() or os.listdir(directory) == []

    def test_malformed_spef_string_source_also_rolls_back(self, tmp_path):
        directory = tmp_path / "s"
        with pytest.raises(ParseError):
            ingest_spef(TRUNCATED_SPEF, str(directory), shard_nodes=2)
        assert not directory.exists() or os.listdir(directory) == []


class TestBlockIngest:
    def test_stream_ingest_is_deterministic(self, tmp_path):
        kwargs = dict(nodes_range=(2, 9), block_nets=16)
        a = ingest_blocks(
            stream_random_nets(64, seed=11, **kwargs),
            str(tmp_path / "a"),
            shard_nodes=50,
        )
        b = ingest_blocks(
            stream_random_nets(64, seed=11, **kwargs),
            str(tmp_path / "b"),
            shard_nodes=50,
        )
        assert a.tree_count == b.tree_count == 64
        assert a.node_count == b.node_count
        np.testing.assert_allclose(
            np.asarray(StoredForest(str(tmp_path / "a")).solve().tde),
            np.asarray(StoredForest(str(tmp_path / "b")).solve().tde),
            rtol=0,
        )

    def test_block_and_per_tree_ingest_agree(self, tmp_path):
        blocks = list(stream_random_nets(32, seed=4, block_nets=8))
        bulk = ingest_blocks(iter(blocks), str(tmp_path / "bulk"), shard_nodes=64)

        from repro.store import ShardStoreWriter

        with ShardStoreWriter(str(tmp_path / "one"), shard_nodes=64) as writer:
            for block in blocks:
                for t in range(block.tree_count):
                    lo, hi = int(block.starts[t]), int(block.starts[t + 1])
                    parent = block.parent[lo:hi].copy()
                    parent[parent >= 0] -= lo
                    writer.add_tree(
                        parent,
                        block.edge_r[lo:hi],
                        block.edge_c[lo:hi],
                        block.node_c[lo:hi],
                    )
            single = writer.close()
        assert single.tree_count == bulk.tree_count
        assert single.node_count == bulk.node_count
        np.testing.assert_allclose(
            np.asarray(StoredForest(str(tmp_path / "bulk")).solve().tde),
            np.asarray(StoredForest(str(tmp_path / "one")).solve().tde),
            rtol=0,
        )
