"""Tests for the incremental shard-store writer: format round-trip,
tree-boundary shard cuts, transactional abort, and input validation."""

import os

import numpy as np
import pytest

from repro.core.exceptions import AnalysisError
from repro.generators import RandomTreeConfig, random_flat_tree
from repro.store import MANIFEST_NAME, Manifest, ShardStoreWriter
from repro.store.format import read_shard_arrays


def _flat_trees(count, seed=0, nodes=12):
    config = RandomTreeConfig(nodes=nodes)
    return [random_flat_tree(seed + i, config) for i in range(count)]


def _store_files(directory):
    return sorted(os.listdir(directory))


class TestRoundTrip:
    def test_arrays_survive_write_and_read(self, tmp_path):
        trees = _flat_trees(6, seed=3)
        directory = str(tmp_path / "store")
        with ShardStoreWriter(directory, shard_nodes=30) as writer:
            for tree in trees:
                writer.add_flat_tree(tree)
            manifest = writer.close()

        assert manifest.tree_count == 6
        assert manifest.node_count == sum(len(t._parent) for t in trees)

        # Re-concatenate the shards and compare field by field.
        gathered = {name: [] for name in ("parent", "edge_r", "edge_c", "node_c")}
        for record in manifest.shards:
            arrays = read_shard_arrays(
                os.path.join(directory, record.file_name), record.nodes, record.trees
            )
            for name in gathered:
                gathered[name].append(np.asarray(arrays[name]))
        local_roots = np.concatenate([np.asarray(a["parent"]) < 0 for a in (
            read_shard_arrays(
                os.path.join(directory, r.file_name), r.nodes, r.trees
            ) for r in manifest.shards
        )])
        assert int(local_roots.sum()) == 6
        for name in ("edge_r", "edge_c", "node_c"):
            expected = np.concatenate([getattr(t, "_" + name) for t in trees])
            np.testing.assert_array_equal(np.concatenate(gathered[name]), expected)

    def test_manifest_persists_and_reloads(self, tmp_path):
        directory = str(tmp_path / "store")
        with ShardStoreWriter(directory, shard_nodes=16) as writer:
            for tree in _flat_trees(4):
                writer.add_flat_tree(tree)
            manifest = writer.close()
        reloaded = Manifest.load(directory)
        assert reloaded.tree_count == manifest.tree_count
        assert reloaded.node_count == manifest.node_count
        assert [r.file_name for r in reloaded.shards] == [
            r.file_name for r in manifest.shards
        ]
        assert reloaded.depth == manifest.depth


class TestShardCuts:
    def test_shards_cut_at_tree_boundaries(self, tmp_path):
        trees = _flat_trees(8, nodes=9)
        with ShardStoreWriter(str(tmp_path / "s"), shard_nodes=25) as writer:
            for tree in trees:
                writer.add_flat_tree(tree)
            manifest = writer.close()
        assert len(manifest.shards) > 1
        # Tree/node totals add up and every shard holds whole trees.
        assert sum(r.trees for r in manifest.shards) == 8
        sizes = [len(t._parent) for t in trees]
        consumed = 0
        for record in manifest.shards:
            span = sizes[consumed : consumed + record.trees]
            assert record.nodes == sum(span)
            consumed += record.trees

    def test_oversized_tree_is_never_split(self, tmp_path):
        big = random_flat_tree(0, RandomTreeConfig(nodes=40))
        small = _flat_trees(2, seed=9, nodes=5)
        with ShardStoreWriter(str(tmp_path / "s"), shard_nodes=10) as writer:
            writer.add_flat_tree(big)
            for tree in small:
                writer.add_flat_tree(tree)
            manifest = writer.close()
        # The 41-node tree overflows the 10-node threshold: it gets a
        # whole (oversized) shard to itself rather than being split.
        assert manifest.shards[0].trees == 1
        assert manifest.shards[0].nodes == len(big._parent)

    def test_level_counts_cover_every_node(self, tmp_path):
        with ShardStoreWriter(str(tmp_path / "s"), shard_nodes=20) as writer:
            for tree in _flat_trees(5):
                writer.add_flat_tree(tree)
            manifest = writer.close()
        for record in manifest.shards:
            assert sum(record.level_counts) == record.nodes
            assert len(record.level_counts) == record.depth + 1


class TestTransactional:
    def test_exception_inside_context_removes_all_files(self, tmp_path):
        directory = tmp_path / "s"
        with pytest.raises(RuntimeError):
            with ShardStoreWriter(str(directory), shard_nodes=8) as writer:
                for tree in _flat_trees(4):
                    writer.add_flat_tree(tree)
                raise RuntimeError("boom")
        assert not directory.exists() or _store_files(str(directory)) == []

    def test_abort_after_flush_removes_shard_files(self, tmp_path):
        directory = tmp_path / "s"
        writer = ShardStoreWriter(str(directory), shard_nodes=8)
        for tree in _flat_trees(4):
            writer.add_flat_tree(tree)
        assert writer.shard_count >= 1  # something already hit disk
        writer.abort()
        assert not directory.exists() or _store_files(str(directory)) == []

    def test_close_with_zero_trees_raises_and_cleans(self, tmp_path):
        directory = tmp_path / "s"
        writer = ShardStoreWriter(str(directory))
        with pytest.raises(AnalysisError):
            writer.close()

    def test_refuses_to_overwrite_without_flag(self, tmp_path):
        directory = str(tmp_path / "s")
        with ShardStoreWriter(directory) as writer:
            writer.add_flat_tree(random_flat_tree(0))
            writer.close()
        with pytest.raises(AnalysisError):
            ShardStoreWriter(directory)

    def test_overwrite_replaces_previous_store(self, tmp_path):
        directory = str(tmp_path / "s")
        with ShardStoreWriter(directory) as writer:
            for tree in _flat_trees(3):
                writer.add_flat_tree(tree)
            writer.close()
        with ShardStoreWriter(directory, overwrite=True) as writer:
            writer.add_flat_tree(random_flat_tree(7))
            manifest = writer.close()
        assert manifest.tree_count == 1
        assert os.path.exists(os.path.join(directory, MANIFEST_NAME))


class TestValidation:
    def test_rejects_non_topological_parent(self, tmp_path):
        writer = ShardStoreWriter(str(tmp_path / "s"))
        with pytest.raises(AnalysisError):
            writer.add_tree([-1, 2, 1], [0.0, 1.0, 1.0], [0.0] * 3, [1.0] * 3)
        writer.abort()

    def test_rejects_non_root_first_node(self, tmp_path):
        writer = ShardStoreWriter(str(tmp_path / "s"))
        with pytest.raises(AnalysisError):
            writer.add_tree([0, 0], [0.0, 1.0], [0.0, 0.0], [1.0, 1.0])
        writer.abort()

    def test_rejects_mismatched_plane_lengths(self, tmp_path):
        writer = ShardStoreWriter(str(tmp_path / "s"))
        with pytest.raises(AnalysisError):
            writer.add_tree([-1, 0], [0.0], [0.0, 0.0], [1.0, 1.0])
        writer.abort()

    def test_rejects_empty_tree(self, tmp_path):
        writer = ShardStoreWriter(str(tmp_path / "s"))
        with pytest.raises(AnalysisError):
            writer.add_tree([], [], [], [])
        writer.abort()

    def test_rejects_bad_shard_nodes(self, tmp_path):
        with pytest.raises(AnalysisError):
            ShardStoreWriter(str(tmp_path / "s"), shard_nodes=0)
