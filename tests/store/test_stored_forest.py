"""Tests for the out-of-core StoredForest: parity with the in-RAM
FlatForest, the hot-shard LRU, persisted incremental solves, ECO
re-solves of one shard, the worker-pool path and scratch-file hygiene."""

import gc
import glob
import os

import numpy as np
import pytest

from repro.core.exceptions import AnalysisError
from repro.flat import FlatForest
from repro.generators import RandomTreeConfig, random_flat_tree
from repro.store import ShardStoreWriter, StoredForest
from repro.store.format import UNSOLVED

RTOL = 1e-12


def _trees(count, seed=0, nodes=12):
    config = RandomTreeConfig(nodes=nodes)
    return [random_flat_tree(seed + i, config) for i in range(count)]


def _build_store(tmp_path, trees, shard_nodes=40):
    directory = str(tmp_path / "store")
    with ShardStoreWriter(directory, shard_nodes=shard_nodes) as writer:
        for tree in trees:
            writer.add_flat_tree(tree)
        writer.close()
    return directory


@pytest.fixture
def workload(tmp_path):
    trees = _trees(10, seed=42)
    directory = _build_store(tmp_path, trees)
    return FlatForest(trees), StoredForest(directory)


class TestStructure:
    def test_counts_and_offsets_match_flat_forest(self, workload):
        ram, stored = workload
        assert len(stored) == len(ram)
        assert stored.tree_count == len(ram._trees)
        assert stored.shard_count >= 2
        np.testing.assert_array_equal(stored.offsets, ram._offsets)

    def test_shard_bounds_partition_the_forest(self, workload):
        _, stored = workload
        node_pos = tree_pos = 0
        for shard in range(stored.shard_count):
            node_lo, node_hi, tree_lo, tree_hi = stored.shard_bounds(shard)
            assert (node_lo, tree_lo) == (node_pos, tree_pos)
            node_pos, tree_pos = node_hi, tree_hi
        assert node_pos == stored.node_count
        assert tree_pos == stored.tree_count

    def test_shard_of_tree_inverts_bounds(self, workload):
        _, stored = workload
        for tree in range(stored.tree_count):
            shard = stored.shard_of_tree(tree)
            _, _, tree_lo, tree_hi = stored.shard_bounds(shard)
            assert tree_lo <= tree < tree_hi


class TestSolveParity:
    def test_single_scenario_matches_flat_forest(self, workload):
        ram, stored = workload
        expected = ram.solve()
        actual = stored.solve()
        for name in ("tp", "tde", "tre", "ree", "total_capacitance"):
            np.testing.assert_allclose(
                np.asarray(getattr(actual, name)),
                np.asarray(getattr(expected, name)),
                rtol=RTOL,
            )

    def test_broadcast_batch_matches_flat_forest(self, workload):
        ram, stored = workload
        derate = np.asarray([0.9, 1.0, 1.15])
        expected = ram.solve_batch(edge_r=derate * 1.0, node_c=derate, count=3)
        actual = stored.solve_batch(edge_r=derate * 1.0, node_c=derate, count=3)
        for name in ("tp", "tde", "tre", "total_capacitance"):
            np.testing.assert_allclose(
                np.asarray(getattr(actual, name)),
                np.asarray(getattr(expected, name)),
                rtol=RTOL,
            )

    def test_full_plane_batch_matches_flat_forest(self, workload):
        ram, stored = workload
        rng = np.random.default_rng(7)
        plane = rng.uniform(0.8, 1.2, size=(2, ram.node_count))
        expected = ram.solve_batch(node_c=plane * 1e-14, count=2)
        actual = stored.solve_batch(node_c=plane * 1e-14, count=2)
        np.testing.assert_allclose(
            np.asarray(actual.tde), np.asarray(expected.tde), rtol=RTOL
        )
        np.testing.assert_allclose(
            np.asarray(actual.tp), np.asarray(expected.tp), rtol=RTOL
        )

    def test_planes_for_factory_matches_global_planes(self, workload):
        ram, stored = workload
        derate = np.asarray([0.85, 1.0, 1.3])
        base_edge_c = np.concatenate(
            [stored.materialize(s).edge_c for s in range(stored.shard_count)]
        )
        expected = ram.solve_batch(
            edge_c=derate[:, None] * base_edge_c[None, :], count=3
        )

        def planes_for(shard, node_lo, node_hi):
            hot = stored.materialize(shard)
            return (None, (hot.edge_c[:, None] * derate).T, None)

        actual = stored.solve_batch(planes_for=planes_for, count=3)
        for name in ("tp", "tde", "tre", "total_capacitance"):
            np.testing.assert_allclose(
                np.asarray(getattr(actual, name)),
                np.asarray(getattr(expected, name)),
                rtol=RTOL,
            )

    def test_pool_path_matches_serial(self, workload):
        _, stored = workload
        derate = np.asarray([0.9, 1.1])
        serial = stored.solve_batch(node_c=derate, count=2)
        pooled = stored.solve_batch(node_c=derate, count=2, jobs=2)
        for name in ("tp", "tde", "tre", "total_capacitance"):
            np.testing.assert_allclose(
                np.asarray(getattr(pooled, name)),
                np.asarray(getattr(serial, name)),
                rtol=RTOL,
            )

    def test_batch_validates_inputs(self, workload):
        _, stored = workload
        with pytest.raises(AnalysisError):
            stored.solve_batch(planes_for=lambda s, lo, hi: (None, None, None))
        with pytest.raises(AnalysisError):
            stored.solve_batch(
                np.ones(2), planes_for=lambda s, lo, hi: (None, None, None), count=2
            )


class TestHotShardLru:
    def test_lru_bounds_resident_shards(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_HOT_SHARDS", "2")
        directory = _build_store(tmp_path, _trees(12, seed=5), shard_nodes=30)
        stored = StoredForest(directory)
        assert stored.shard_count >= 4
        for shard in range(stored.shard_count):
            stored.materialize(shard)
            assert stored.hot_shard_count <= 2

    def test_materialize_is_cached(self, workload):
        _, stored = workload
        first = stored.materialize(0)
        again = stored.materialize(0)
        assert first is again

    def test_close_drops_hot_shards(self, workload):
        _, stored = workload
        stored.materialize(0)
        stored.close()
        assert stored.hot_shard_count == 0


class TestPersistence:
    def test_results_survive_reopen(self, workload):
        ram, stored = workload
        expected = stored.solve()
        tde = np.asarray(expected.tde).copy()
        directory = stored.directory
        del expected
        stored.close()

        reopened = StoredForest(directory)
        # Every shard is already marked solved at its current generation.
        record = reopened._manifest.results
        assert record is not None
        assert all(g != UNSOLVED for g in record.solved)
        np.testing.assert_allclose(np.asarray(reopened.solve().tde), tde, rtol=RTOL)

    def test_solve_is_incremental_per_shard(self, workload):
        ram, stored = workload
        stored.solve()
        before = list(stored._manifest.results.solved)

        replacement = random_flat_tree(999, RandomTreeConfig(nodes=12))
        stored.replace_tree(3, replacement)
        shard = stored.shard_of_tree(3)
        assert stored._manifest.results.solved[shard] == UNSOLVED
        untouched = [g for i, g in enumerate(before) if i != shard]

        stored.solve()
        after = list(stored._manifest.results.solved)
        assert [g for i, g in enumerate(after) if i != shard] == untouched


class TestEco:
    def test_same_size_replace_matches_flat_forest(self, workload):
        ram, stored = workload
        replacement = random_flat_tree(1234, RandomTreeConfig(nodes=12))
        ram.replace_tree(4, replacement)
        stored.replace_tree(4, replacement)
        expected, actual = ram.solve(), stored.solve()
        for name in ("tde", "tre", "tp"):
            np.testing.assert_allclose(
                np.asarray(getattr(actual, name)),
                np.asarray(getattr(expected, name)),
                rtol=RTOL,
            )

    def test_size_change_replace_matches_flat_forest(self, workload):
        ram, stored = workload
        replacement = random_flat_tree(77, RandomTreeConfig(nodes=21))
        ram.replace_tree(2, replacement)
        stored.replace_tree(2, replacement)
        np.testing.assert_array_equal(stored.offsets, ram._offsets)
        expected, actual = ram.solve(), stored.solve()
        for name in ("tde", "tre", "tp", "total_capacitance"):
            np.testing.assert_allclose(
                np.asarray(getattr(actual, name)),
                np.asarray(getattr(expected, name)),
                rtol=RTOL,
            )

    def test_replace_accepts_raw_arrays(self, workload):
        ram, stored = workload
        tree = random_flat_tree(55, RandomTreeConfig(nodes=8))
        ram.replace_tree(0, tree)
        stored.replace_tree(
            0, (tree._parent, tree._edge_r, tree._edge_c, tree._node_c)
        )
        np.testing.assert_allclose(
            np.asarray(stored.solve().tde), np.asarray(ram.solve().tde), rtol=RTOL
        )

    def test_replace_rejects_bad_index(self, workload):
        _, stored = workload
        tree = random_flat_tree(1)
        with pytest.raises(AnalysisError):
            stored.replace_tree(stored.tree_count, tree)
        with pytest.raises(AnalysisError):
            stored.replace_tree(-1, tree)


class TestScratchHygiene:
    def test_batch_scratch_files_are_unlinked(self, workload):
        _, stored = workload
        result = stored.solve_batch(node_c=np.asarray([0.9, 1.1]), count=2)
        pattern = os.path.join(stored.directory, ".batch-*")
        assert glob.glob(pattern)  # alive while the result is referenced
        del result
        gc.collect()
        assert glob.glob(pattern) == []
