"""Tests for the technology descriptions, including the paper's derived values."""

import pytest

from repro.core.exceptions import ElementValueError
from repro.extraction.technology import (
    GENERIC_1UM_CMOS,
    PAPER_NMOS_4UM,
    Layer,
    Technology,
)


class TestPaperProcess:
    """Section V: 'These numbers lead to a capacitance of 0.01 pF and resistance
    180 ohms between gates, and a resistance of 30 ohms and capacitance of
    0.013 pF for each gate.'"""

    def test_poly_segment_resistance_is_180_ohm(self):
        # 24 um of 4 um wide poly at 30 ohm/sq = 6 squares = 180 ohm.
        r = PAPER_NMOS_4UM.wire_resistance(Layer.POLY, 24e-6, 4e-6)
        assert r == pytest.approx(180.0)

    def test_poly_segment_capacitance_is_about_0_01_pf(self):
        c = PAPER_NMOS_4UM.wire_capacitance(Layer.POLY, 24e-6, 4e-6)
        assert c == pytest.approx(0.011e-12, rel=0.15)

    def test_gate_resistance_is_30_ohm(self):
        # A 4x4 um gate is one square of poly.
        r = PAPER_NMOS_4UM.gate_resistance(4e-6, 4e-6)
        assert r == pytest.approx(30.0)

    def test_gate_capacitance_is_about_0_013_pf(self):
        c = PAPER_NMOS_4UM.gate_capacitance(4e-6, 4e-6)
        assert c == pytest.approx(0.0138e-12, rel=0.1)

    def test_minimum_gate_capacitance_helper(self):
        assert PAPER_NMOS_4UM.minimum_gate_capacitance() == pytest.approx(
            PAPER_NMOS_4UM.gate_capacitance(4e-6, 4e-6)
        )

    def test_gate_oxide_thinner_than_field_oxide(self):
        assert (
            PAPER_NMOS_4UM.gate_capacitance_per_area
            > PAPER_NMOS_4UM.field_capacitance_per_area
        )

    def test_describe_mentions_process(self):
        text = PAPER_NMOS_4UM.describe()
        assert "paper-nmos-4um" in text
        assert "ohm/sq" in text


class TestGenericProcess:
    def test_fringe_capacitance_included(self):
        with_fringe = GENERIC_1UM_CMOS.wire_capacitance(Layer.METAL, 100e-6, 1e-6)
        plate_only = (
            GENERIC_1UM_CMOS.field_capacitance_per_area * 100e-6 * 1e-6
        )
        assert with_fringe > plate_only

    def test_metal_much_less_resistive_than_poly(self):
        metal = GENERIC_1UM_CMOS.wire_resistance(Layer.METAL, 100e-6, 1e-6)
        poly = GENERIC_1UM_CMOS.wire_resistance(Layer.POLY, 100e-6, 1e-6)
        assert metal < poly / 50.0


class TestValidation:
    def test_missing_layer_rejected(self):
        with pytest.raises(ElementValueError):
            Technology(
                name="broken",
                feature_size=1e-6,
                sheet_resistance={Layer.POLY: 20.0},
                gate_oxide_thickness=200e-10,
                field_oxide_thickness=6000e-10,
            )

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            PAPER_NMOS_4UM.wire_resistance(Layer.POLY, 0.0, 1e-6)
        with pytest.raises(ValueError):
            PAPER_NMOS_4UM.gate_capacitance(1e-6, -1e-6)

    def test_resistance_scales_with_length_over_width(self):
        r1 = PAPER_NMOS_4UM.wire_resistance(Layer.POLY, 10e-6, 2e-6)
        r2 = PAPER_NMOS_4UM.wire_resistance(Layer.POLY, 20e-6, 2e-6)
        r3 = PAPER_NMOS_4UM.wire_resistance(Layer.POLY, 10e-6, 4e-6)
        assert r2 == pytest.approx(2.0 * r1)
        assert r3 == pytest.approx(0.5 * r1)
