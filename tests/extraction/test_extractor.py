"""Tests for geometry-to-RC-tree extraction (the Figure 1 -> Figure 2 step)."""

import pytest

from repro.core.timeconstants import characteristic_times, characteristic_times_all
from repro.extraction.extractor import extract_net, extract_wire_chain
from repro.extraction.geometry import RoutedNet
from repro.extraction.technology import GENERIC_1UM_CMOS, PAPER_NMOS_4UM, Layer
from repro.mos.drivers import PAPER_SUPERBUFFER, DriverModel


def figure1_like_net():
    """A poly run with two gate taps plus a metal branch to a third gate."""
    net = RoutedNet("sig")
    net.add_wire("drv", "p1", Layer.POLY, 50e-6, 4e-6)
    net.add_wire("p1", "p2", Layer.POLY, 50e-6, 4e-6)
    net.add_wire("p1", "m1", Layer.METAL, 500e-6, 4e-6)
    net.add_gate("p2", 4e-6, 4e-6, series_resistance=30.0, name="gateA")
    net.add_gate("m1", 4e-6, 4e-6, series_resistance=30.0, name="gateB")
    return net


class TestExtractNet:
    def test_outputs_are_gates(self):
        tree = extract_net(figure1_like_net(), PAPER_NMOS_4UM)
        assert set(tree.outputs) == {"gateA", "gateB"}

    def test_poly_becomes_distributed_lines(self):
        tree = extract_net(figure1_like_net(), PAPER_NMOS_4UM)
        distributed = [edge for edge in tree.edges if edge.is_distributed]
        assert len(distributed) == 2  # the two poly segments

    def test_metal_resistance_neglected_by_default(self):
        tree = extract_net(figure1_like_net(), PAPER_NMOS_4UM)
        # The metal branch contributes capacitance only: gateB hangs off the
        # same electrical node as the end of the first poly segment.
        assert tree.parent_of("gateB") == "sig.p1"

    def test_metal_resistance_can_be_kept(self):
        tree = extract_net(figure1_like_net(), PAPER_NMOS_4UM, neglect_metal_resistance=False)
        assert tree.parent_of("gateB") == "sig.m1"

    def test_total_capacitance_accounts_for_wires_and_gates(self):
        technology = PAPER_NMOS_4UM
        tree = extract_net(figure1_like_net(), technology)
        expected = (
            technology.wire_capacitance(Layer.POLY, 50e-6, 4e-6) * 2
            + technology.wire_capacitance(Layer.METAL, 500e-6, 4e-6)
            + technology.gate_capacitance(4e-6, 4e-6) * 2
        )
        assert tree.total_capacitance == pytest.approx(expected, rel=1e-12)

    def test_driver_model_prepended(self):
        tree = extract_net(figure1_like_net(), PAPER_NMOS_4UM, driver=PAPER_SUPERBUFFER)
        first_edge = tree.path_edges("gateA")[0]
        assert first_edge.resistance == pytest.approx(380.0)
        assert tree.total_capacitance == pytest.approx(
            extract_net(figure1_like_net(), PAPER_NMOS_4UM).total_capacitance + 0.04e-12
        )

    def test_driver_slows_every_output(self):
        bare = extract_net(figure1_like_net(), PAPER_NMOS_4UM)
        driven = extract_net(figure1_like_net(), PAPER_NMOS_4UM, driver=PAPER_SUPERBUFFER)
        for output in ("gateA", "gateB"):
            assert (
                characteristic_times(driven, output).tde
                > characteristic_times(bare, output).tde
            )

    def test_zero_series_resistance_gate_sits_on_wire(self):
        net = RoutedNet("n")
        net.add_wire("drv", "p1", Layer.POLY, 10e-6, 1e-6)
        net.add_gate("p1", 1e-6, 1e-6)
        tree = extract_net(net, GENERIC_1UM_CMOS)
        assert tree.outputs == ["n.p1"]

    def test_contacts_add_capacitance(self):
        net = RoutedNet("n")
        net.add_wire("drv", "p1", Layer.POLY, 10e-6, 1e-6)
        net.add_contact("p1", count=3)
        tree = extract_net(net, GENERIC_1UM_CMOS)
        base = GENERIC_1UM_CMOS.wire_capacitance(Layer.POLY, 10e-6, 1e-6)
        assert tree.total_capacitance == pytest.approx(
            base + 3 * GENERIC_1UM_CMOS.contact_capacitance
        )


class TestExtractWireChain:
    def test_chain_structure(self):
        tree = extract_wire_chain(
            "bus", PAPER_NMOS_4UM, Layer.POLY, [24e-6] * 4, 4e-6, load_capacitance=0.05e-12
        )
        assert tree.outputs == ["bus.p4"]
        assert len([e for e in tree.edges if e.is_distributed]) == 4

    def test_longer_chain_is_slower(self):
        short = extract_wire_chain("a", PAPER_NMOS_4UM, Layer.POLY, [24e-6] * 2, 4e-6)
        long = extract_wire_chain("a", PAPER_NMOS_4UM, Layer.POLY, [24e-6] * 8, 4e-6)
        assert (
            characteristic_times(long, "a.p8").tde
            > characteristic_times(short, "a.p2").tde
        )

    def test_with_driver(self):
        tree = extract_wire_chain(
            "a",
            PAPER_NMOS_4UM,
            Layer.POLY,
            [24e-6] * 2,
            4e-6,
            driver=DriverModel("d", 500.0, 0.02e-12),
        )
        assert tree.path_edges("a.p2")[0].resistance == pytest.approx(500.0)
