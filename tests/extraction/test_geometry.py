"""Tests for the routed-net geometry model."""

import pytest

from repro.core.exceptions import DuplicateNodeError, TopologyError, UnknownNodeError
from repro.extraction.geometry import Contact, GateLoad, RoutedNet, WireSegment
from repro.extraction.technology import Layer


def simple_net():
    net = RoutedNet("sig", driver_point="drv")
    net.add_wire("drv", "p1", Layer.POLY, 24e-6, 4e-6)
    net.add_wire("p1", "p2", Layer.POLY, 24e-6, 4e-6)
    net.add_wire("p1", "p3", Layer.METAL, 100e-6, 4e-6)
    net.add_gate("p2", 4e-6, 4e-6, series_resistance=30.0)
    net.add_gate("p3", 4e-6, 4e-6)
    net.add_contact("p1", count=2)
    return net


class TestRoutedNet:
    def test_points_in_order(self):
        net = simple_net()
        assert net.points == ["drv", "p1", "p2", "p3"]

    def test_wire_from_unknown_point_rejected(self):
        net = RoutedNet("sig")
        with pytest.raises(UnknownNodeError):
            net.add_wire("nowhere", "p1", Layer.POLY, 1e-6, 1e-6)

    def test_wire_to_existing_point_rejected(self):
        net = simple_net()
        with pytest.raises(DuplicateNodeError):
            net.add_wire("p2", "p1", Layer.POLY, 1e-6, 1e-6)

    def test_gate_on_unknown_point_rejected(self):
        net = simple_net()
        with pytest.raises(UnknownNodeError):
            net.add_gate("nowhere", 1e-6, 1e-6)

    def test_contact_on_unknown_point_rejected(self):
        net = simple_net()
        with pytest.raises(UnknownNodeError):
            net.add_contact("nowhere")

    def test_fanout_and_length(self):
        net = simple_net()
        assert net.fanout() == 2
        assert net.total_wire_length() == pytest.approx(24e-6 + 24e-6 + 100e-6)

    def test_validate_passes(self):
        simple_net().validate()


class TestValueObjects:
    def test_wire_segment_checks_dimensions(self):
        with pytest.raises(ValueError):
            WireSegment("a", "b", Layer.POLY, 0.0, 1e-6)

    def test_gate_load_checks_dimensions(self):
        with pytest.raises(ValueError):
            GateLoad("a", -1e-6, 1e-6)
        with pytest.raises(ValueError):
            GateLoad("a", 1e-6, 1e-6, series_resistance=-1.0)

    def test_contact_count_positive(self):
        with pytest.raises(ValueError):
            Contact("a", count=0)
        assert Contact("a").count == 1
