"""The docs link-check, exposed to the tier-1 suite.

``tools/check_docs.py`` verifies that every module named in ``README.md`` and
``docs/*.md`` imports, that every ``path:line`` anchor points into an
existing file, and that every relative markdown link resolves.  CI runs the
tool standalone; this test runs the same checks under pytest so a stale doc
reference fails the ordinary test run too.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _load_tool():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_references_resolve():
    tool = _load_tool()
    failures = tool.collect_failures()
    assert not failures, "\n".join(f"{doc.name}: {problem}" for doc, problem in failures)


def test_docs_exist():
    tool = _load_tool()
    names = {path.name for path in tool.doc_files()}
    assert "README.md" in names
    assert "paper_map.md" in names
    assert "performance.md" in names
