"""The docs health-check, exposed to the tier-1 suite.

``tools/check_docs.py`` verifies that every module named in ``README.md`` and
``docs/*.md`` imports, that every ``path:line`` anchor points into an
existing file, that every relative markdown link resolves, and that the
engine-layer packages carry full public docstrings (which feeds the
generated ``docs/api.md``).  CI runs the tool standalone; this test runs
the same checks under pytest so a stale doc reference fails the ordinary
test run too.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _load_tool():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_references_resolve():
    tool = _load_tool()
    failures = tool.collect_failures()
    assert not failures, "\n".join(f"{doc.name}: {problem}" for doc, problem in failures)


def test_docs_exist():
    tool = _load_tool()
    names = {path.name for path in tool.doc_files()}
    assert "README.md" in names
    assert "paper_map.md" in names
    assert "performance.md" in names
    assert "architecture.md" in names
    assert "api.md" in names


def test_engine_layers_fully_docstringed():
    tool = _load_tool()
    missing = tool.check_docstrings()
    assert not missing, "\n".join(missing)


def test_generated_api_reference_is_current():
    """``docs/api.md`` must match a fresh generation (line anchors included).

    Signature rendering can differ in detail between interpreter versions,
    so only the version the CI docs job generates with (3.11) enforces
    byte-for-byte freshness here; other versions rely on the docs job.
    """
    if sys.version_info[:2] != (3, 11):
        import pytest

        pytest.skip("docs/api.md is generated and checked under Python 3.11")
    spec = importlib.util.spec_from_file_location(
        "gen_api_docs", REPO_ROOT / "tools" / "gen_api_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    on_disk = (REPO_ROOT / "docs" / "api.md").read_text(encoding="utf-8")
    assert module.generate() == on_disk, (
        "docs/api.md is stale; regenerate with: python tools/gen_api_docs.py"
    )
