"""Framework-level tests: suppressions, baseline, CLI, and the two
acceptance gates -- the current tree lints clean, and reverting the
process backend's ``np.frombuffer`` view to ``np.ndarray(buffer=...)``
(the PR 5 segfault class) is caught as RL003.
"""

import json
import textwrap
from pathlib import Path

import pytest

from tools.reprolint.__main__ import main
from tools.reprolint.core import (
    LintConfig,
    load_baseline,
    make_config,
    run_paths,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

VIOLATION = """
import numpy as np

def build(n):
    return np.empty(n)
"""


def write_module(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# Acceptance gates
# ----------------------------------------------------------------------
def test_current_tree_is_clean():
    """`python -m tools.reprolint src tools benchmarks` exits 0 today."""
    result = run_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tools", REPO_ROOT / "benchmarks"],
        config=LintConfig(),
    )
    assert result.parse_errors == []
    assert result.findings == [], [f.to_dict() for f in result.findings]
    assert result.exit_code == 0


def test_reverting_frombuffer_view_to_ndarray_is_caught(tmp_path):
    """The PR 5 segfault class cannot be silently reintroduced.

    Take the real process-backend source and revert its ``_views``
    helper to the ``np.ndarray(buffer=...)`` form the docstring warns
    about; reprolint must flag it as RL003.
    """
    engine_src = (REPO_ROOT / "src/repro/parallel/engine.py").read_text(
        encoding="utf-8"
    )
    good = (
        "views[field] = np.frombuffer(\n"
        "            buffer, dtype=dtype, count=count, offset=offset\n"
        "        ).reshape(shape)"
    )
    bad = (
        "views[field] = np.ndarray(\n"
        "            shape, dtype=dtype, buffer=buffer, offset=offset\n"
        "        )"
    )
    assert good in engine_src, "engine.py _views no longer matches; update test"
    reverted = engine_src.replace(good, bad)
    path = write_module(tmp_path, "repro/parallel/engine.py", reverted)
    result = run_paths([path], config=LintConfig())
    rl003 = [f for f in result.findings if f.rule == "RL003"]
    assert rl003, "reverted ndarray(buffer=...) view was not caught"
    assert any("frombuffer" in f.message for f in rl003)
    # And the unmodified source stays clean, so the catch is the revert.
    clean = run_paths(
        [write_module(tmp_path, "clean/repro/parallel/engine.py", engine_src)],
        config=LintConfig(),
    )
    assert [f for f in clean.findings if f.rule == "RL003"] == []


# ----------------------------------------------------------------------
# Inline suppressions
# ----------------------------------------------------------------------
def test_inline_suppression_silences_one_line(tmp_path):
    path = write_module(
        tmp_path,
        "repro/flat/forest.py",
        """
        import numpy as np

        def build(n):
            a = np.empty(n)  # reprolint: disable=RL002
            b = np.empty(n)
            return a, b
        """,
    )
    result = run_paths([path], config=make_config(repo_root=tmp_path))
    assert len(result.findings) == 1
    assert len(result.suppressed) == 1


def test_file_level_suppression(tmp_path):
    path = write_module(
        tmp_path,
        "repro/flat/forest.py",
        """
        # reprolint: disable-file=RL002
        import numpy as np

        def build(n):
            return np.empty(n), np.zeros(n)
        """,
    )
    result = run_paths([path], config=make_config(repo_root=tmp_path))
    assert result.findings == []
    assert len(result.suppressed) == 2


def test_marker_inside_string_literal_is_inert(tmp_path):
    path = write_module(
        tmp_path,
        "repro/flat/forest.py",
        """
        import numpy as np

        NOTE = "reprolint: disable-file=RL002"

        def build(n):
            return np.empty(n)
        """,
    )
    result = run_paths([path], config=make_config(repo_root=tmp_path))
    assert len(result.findings) == 1


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def test_baseline_grandfathers_existing_findings(tmp_path):
    path = write_module(tmp_path, "repro/flat/forest.py", VIOLATION)
    config = make_config(repo_root=tmp_path)
    first = run_paths([path], config=config)
    assert len(first.findings) == 1

    baseline_file = tmp_path / "baseline.json"
    write_baseline(first.all_current, baseline_file)
    fingerprints = load_baseline(baseline_file)
    assert len(fingerprints) == 1

    second = run_paths([path], config=config, baseline=fingerprints)
    assert second.findings == []
    assert len(second.baselined) == 1
    assert second.exit_code == 0


def test_baseline_survives_line_renumbering(tmp_path):
    path = write_module(tmp_path, "repro/flat/forest.py", VIOLATION)
    config = make_config(repo_root=tmp_path)
    baseline_file = tmp_path / "baseline.json"
    write_baseline(run_paths([path], config=config).all_current, baseline_file)

    # Shift the finding down two lines; the fingerprint is content-based.
    path.write_text(
        "# a new leading comment\n# and another\n" + textwrap.dedent(VIOLATION),
        encoding="utf-8",
    )
    result = run_paths(
        [path], config=config, baseline=load_baseline(baseline_file)
    )
    assert result.findings == []
    assert len(result.baselined) == 1


def test_baseline_does_not_mask_new_findings(tmp_path):
    path = write_module(tmp_path, "repro/flat/forest.py", VIOLATION)
    config = make_config(repo_root=tmp_path)
    baseline_file = tmp_path / "baseline.json"
    write_baseline(run_paths([path], config=config).all_current, baseline_file)

    path.write_text(
        textwrap.dedent(VIOLATION) + "\ndef more(n):\n    return np.zeros(n)\n",
        encoding="utf-8",
    )
    result = run_paths(
        [path], config=config, baseline=load_baseline(baseline_file)
    )
    assert len(result.findings) == 1
    assert "np.zeros" in result.findings[0].message
    assert result.exit_code == 1


def test_committed_baseline_is_empty():
    """The repo ships a clean tree: no grandfathered findings."""
    records = json.loads(
        (REPO_ROOT / "tools/reprolint/baseline.json").read_text(encoding="utf-8")
    )
    assert records == []


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_exit_codes_and_json(tmp_path, capsys):
    bad = write_module(tmp_path, "repro/flat/forest.py", VIOLATION)
    assert main([str(bad)]) == 1
    captured = capsys.readouterr().out
    assert "RL002" in captured

    assert main(["--json", str(bad)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["exit_code"] == 1
    assert payload["findings"][0]["rule"] == "RL002"

    assert main([str(tmp_path / "does-not-exist")]) == 2

    assert main(["--list-rules"]) == 0
    listing = capsys.readouterr().out
    for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
        assert rule_id in listing


def test_cli_write_then_check_baseline(tmp_path, capsys):
    bad = write_module(tmp_path, "repro/flat/forest.py", VIOLATION)
    baseline_file = tmp_path / "baseline.json"
    assert main(["--write-baseline", "--baseline-file", str(baseline_file), str(bad)]) == 0
    capsys.readouterr()
    assert main(["--baseline", "--baseline-file", str(baseline_file), str(bad)]) == 0
    assert main([str(bad)]) == 1


def test_cli_reports_parse_errors(tmp_path, capsys):
    bad = write_module(tmp_path, "repro/flat/forest.py", "def broken(:\n")
    assert main([str(bad)]) == 1
    assert "PARSE" in capsys.readouterr().out
