"""Per-rule fixture tests: each rule fires on a seeded violation and stays
silent on a compliant twin of the same shape.

Fixtures are written under ``tmp_path`` at repo-like relative paths
(``repro/flat/flattree.py`` etc.) so the suffix-based module matching in
:class:`tools.reprolint.core.LintConfig` applies exactly as it does on
the real tree.
"""

import textwrap

import pytest

from tools.reprolint.core import CacheContract, Finding, make_config, run_paths


def lint(tmp_path, rel, source, config=None):
    """Write ``source`` at ``tmp_path/rel`` and lint the tmp tree."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_paths([tmp_path], config=config or make_config(repo_root=tmp_path))


def rules_fired(result):
    """The set of rule ids among new findings."""
    return {finding.rule for finding in result.findings}


# ----------------------------------------------------------------------
# RL001 kernel purity
# ----------------------------------------------------------------------
class TestKernelPurity:
    def test_fires_on_node_loop_in_kernel_function(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/flat/flattree.py",
            """
            def solve(parent, n):
                total = 0.0
                for i in range(n):
                    total += parent[i]
                return total
            """,
        )
        assert "RL001" in rules_fired(result)

    def test_fires_on_while_loop_in_kernel_function(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/parallel/engine.py",
            """
            def _solve_range(levels):
                i = 0
                while i < 10:
                    i += 1
            """,
        )
        assert "RL001" in rules_fired(result)

    def test_silent_on_level_sweep_loop(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/flat/scenarios.py",
            """
            def sweep_scenarios(levels, parent):
                for level in levels[1:]:
                    parent[level] = 0
            """,
        )
        assert "RL001" not in rules_fired(result)

    def test_silent_on_loop_in_compile_path(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/flat/flattree.py",
            """
            def from_tree(nodes):
                for node in nodes:
                    node.visit()
            """,
        )
        assert "RL001" not in rules_fired(result)

    def test_silent_outside_kernel_modules(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/graph/designdb.py",
            """
            def solve(items):
                for item in items:
                    item.run()
            """,
        )
        assert "RL001" not in rules_fired(result)


# ----------------------------------------------------------------------
# RL002 dtype discipline
# ----------------------------------------------------------------------
class TestDtypeDiscipline:
    def test_fires_on_dtypeless_allocation(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/flat/forest.py",
            """
            import numpy as np

            def build(n):
                return np.empty(n)
            """,
        )
        assert "RL002" in rules_fired(result)

    def test_fires_on_tolist_in_kernel_function(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/parallel/engine.py",
            """
            def _solve_numpy(plane):
                return plane.tolist()
            """,
        )
        assert "RL002" in rules_fired(result)

    def test_fires_on_float_scalarization_in_kernel_function(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/flat/flattree.py",
            """
            def solve(plane):
                return float(plane[0])
            """,
        )
        assert "RL002" in rules_fired(result)

    def test_silent_with_explicit_dtype_and_like_allocators(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/flat/forest.py",
            """
            import numpy as np

            def build(n, template):
                a = np.zeros(n, dtype=np.float64)
                b = np.zeros_like(template)
                return a, b
            """,
        )
        assert "RL002" not in rules_fired(result)

    def test_silent_on_tolist_outside_kernel_functions(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/flat/forest.py",
            """
            def summarize(plane):
                return plane.tolist()
            """,
        )
        assert "RL002" not in rules_fired(result)

    def test_silent_outside_kernel_modules(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/graph/timinggraph.py",
            """
            import numpy as np

            def build(n):
                return np.empty(n)
            """,
        )
        assert "RL002" not in rules_fired(result)


# ----------------------------------------------------------------------
# RL003 shared-memory lifetime
# ----------------------------------------------------------------------
class TestShmLifetime:
    def test_fires_on_ndarray_over_buffer(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/parallel/worker.py",
            """
            import numpy as np

            def view(shm, n):
                return np.ndarray((n,), dtype=np.float64, buffer=shm.buf)
            """,
        )
        assert "RL003" in rules_fired(result)

    def test_fires_on_unpaired_owning_allocation(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/parallel/blocks.py",
            """
            from multiprocessing.shared_memory import SharedMemory

            def allocate(nbytes):
                return SharedMemory(create=True, size=nbytes)
            """,
        )
        assert "RL003" in rules_fired(result)

    def test_fires_on_unguarded_close_after_view(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/parallel/oops.py",
            """
            import numpy as np

            def read(shm):
                view = np.frombuffer(shm.buf, dtype=np.float64)
                total = view.sum()
                shm.close()
                return total
            """,
        )
        assert "RL003" in rules_fired(result)

    def test_silent_on_finalize_paired_owner(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/parallel/blocks.py",
            """
            import weakref
            from multiprocessing.shared_memory import SharedMemory

            def _release(shm):
                try:
                    shm.close()
                except BufferError:
                    pass
                shm.unlink()

            class Block:
                def __init__(self, nbytes):
                    self.shm = SharedMemory(create=True, size=nbytes)
                    weakref.finalize(self, _release, self.shm)
            """,
        )
        assert "RL003" not in rules_fired(result)

    def test_silent_on_atexit_wired_cache_owner(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/parallel/cache.py",
            """
            import atexit
            from multiprocessing.shared_memory import SharedMemory

            _CACHE = {}

            def _release(shm):
                try:
                    shm.close()
                except BufferError:
                    pass
                try:
                    shm.unlink()
                except Exception:
                    pass

            def _release_all():
                for shm in _CACHE.values():
                    _release(shm)

            atexit.register(_release_all)

            def allocate(key, nbytes):
                if key in _CACHE:
                    _release(_CACHE.pop(key))
                shm = SharedMemory(create=True, size=nbytes)
                _CACHE[key] = shm
                return shm
            """,
        )
        assert "RL003" not in rules_fired(result)

    def test_silent_on_attach_side_and_guarded_teardown(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/parallel/worker.py",
            """
            import numpy as np
            from multiprocessing.shared_memory import SharedMemory

            def work(name):
                shm = SharedMemory(name=name)
                view = np.frombuffer(shm.buf, dtype=np.float64)
                total = view.sum()
                del view
                try:
                    shm.close()
                except BufferError:
                    pass
                return total
            """,
        )
        assert "RL003" not in rules_fired(result)


# ----------------------------------------------------------------------
# RL004 cache invalidation
# ----------------------------------------------------------------------
CONTRACT = CacheContract(
    module_suffix="repro/flat/cachy.py",
    class_name="Cachy",
    attrs=("_plane",),
    caches=("_times",),
    invalidators=("_rebucket",),
    exempt_methods=("_builder",),
)


def lint_contract(tmp_path, source):
    config = make_config(repo_root=tmp_path, contracts=(CONTRACT,))
    return lint(tmp_path, "repro/flat/cachy.py", source, config=config)


class TestCacheInvalidation:
    def test_fires_on_plain_assignment_without_invalidation(self, tmp_path):
        result = lint_contract(
            tmp_path,
            """
            class Cachy:
                def mutate(self, value):
                    self._plane = value
            """,
        )
        assert "RL004" in rules_fired(result)

    def test_fires_on_subscript_assignment_without_invalidation(self, tmp_path):
        result = lint_contract(
            tmp_path,
            """
            class Cachy:
                def mutate(self, i, value):
                    self._plane[i] = value
            """,
        )
        assert "RL004" in rules_fired(result)

    def test_silent_when_cache_cleared(self, tmp_path):
        result = lint_contract(
            tmp_path,
            """
            class Cachy:
                def mutate(self, value):
                    self._plane = value
                    self._times = None
            """,
        )
        assert "RL004" not in rules_fired(result)

    def test_silent_when_invalidator_called(self, tmp_path):
        result = lint_contract(
            tmp_path,
            """
            class Cachy:
                def mutate(self, i, value):
                    self._plane[i] = value
                    self._rebucket()
            """,
        )
        assert "RL004" not in rules_fired(result)

    def test_init_and_exempt_methods_are_skipped(self, tmp_path):
        result = lint_contract(
            tmp_path,
            """
            class Cachy:
                def __init__(self):
                    self._plane = None
                    self._times = None

                def _builder(self, value):
                    self._plane = value

                def _rebucket(self):
                    self._plane = self._plane
            """,
        )
        assert "RL004" not in rules_fired(result)


# ----------------------------------------------------------------------
# RL005 registry sync
# ----------------------------------------------------------------------
REGISTRY_SOURCE = """
def register_backend(name, fn):
    pass

register_backend("numpy", None)
register_backend("native", None)
"""

CLI_IN_SYNC = """
def build(parser):
    parser.add_argument("--engine", choices=["auto", "numpy", "native"])
"""

CLI_DRIFTED = """
def build(parser):
    parser.add_argument("--engine", choices=["auto", "numpy"])
"""

DOCS_IN_SYNC = '| `"numpy"` | one process |\n| `"native"` | compiled |\n'
DOCS_DRIFTED = '| `"numpy"` | one process |\n'

MATRIX_IN_SYNC = 'ARMS = ("numpy", "native")\n'
MATRIX_DRIFTED = 'ARMS = ("numpy",)\n'


def build_repo(tmp_path, cli, docs, matrix):
    """A miniature repo with a registry module and its three mirrors."""
    (tmp_path / "src/repro/parallel").mkdir(parents=True)
    (tmp_path / "docs").mkdir()
    (tmp_path / "tests/properties").mkdir(parents=True)
    (tmp_path / "src/repro/parallel/engine.py").write_text(REGISTRY_SOURCE)
    if cli is not None:
        (tmp_path / "src/repro/cli.py").write_text(cli)
    if docs is not None:
        (tmp_path / "docs/architecture.md").write_text(docs)
    if matrix is not None:
        (tmp_path / "tests/properties/test_engine_matrix.py").write_text(matrix)
    return run_paths(
        [tmp_path / "src/repro/parallel"],
        config=make_config(repo_root=tmp_path),
    )


class TestRegistrySync:
    def test_fires_on_drift_in_every_mirror(self, tmp_path):
        result = build_repo(tmp_path, CLI_DRIFTED, DOCS_DRIFTED, MATRIX_DRIFTED)
        messages = [f.message for f in result.findings if f.rule == "RL005"]
        assert len(messages) == 3
        assert all("native" in message for message in messages)

    def test_fires_on_missing_mirror_file(self, tmp_path):
        result = build_repo(tmp_path, None, DOCS_IN_SYNC, MATRIX_IN_SYNC)
        assert "RL005" in rules_fired(result)

    def test_silent_when_mirrors_in_sync(self, tmp_path):
        result = build_repo(tmp_path, CLI_IN_SYNC, DOCS_IN_SYNC, MATRIX_IN_SYNC)
        assert "RL005" not in rules_fired(result)


# ----------------------------------------------------------------------
# RL006 oracle pinning
# ----------------------------------------------------------------------
class TestBenchOracle:
    def test_fires_on_measuring_test_without_assert(self, tmp_path):
        result = lint(
            tmp_path,
            "benchmarks/bench_demo.py",
            """
            def test_speed(benchmark):
                benchmark(lambda: 1 + 1)
            """,
        )
        assert "RL006" in rules_fired(result)

    def test_fires_when_measurement_hides_in_helper(self, tmp_path):
        result = lint(
            tmp_path,
            "benchmarks/bench_demo.py",
            """
            import time

            def _best(fn):
                start = time.perf_counter()
                fn()
                return time.perf_counter() - start

            def test_speed(report):
                report["t"] = _best(lambda: 1 + 1)
            """,
        )
        assert "RL006" in rules_fired(result)

    def test_silent_when_parity_asserted_via_helper(self, tmp_path):
        result = lint(
            tmp_path,
            "benchmarks/bench_demo.py",
            """
            import time

            def _best(fn):
                start = time.perf_counter()
                out = fn()
                return time.perf_counter() - start, out

            def _check(result, oracle):
                assert abs(result - oracle) < 1e-12

            def test_speed(report):
                elapsed, out = _best(lambda: 1 + 1)
                _check(out, 2)
            """,
        )
        assert "RL006" not in rules_fired(result)

    def test_silent_on_non_measuring_test(self, tmp_path):
        result = lint(
            tmp_path,
            "benchmarks/bench_demo.py",
            """
            def test_shapes():
                data = [1, 2, 3]
                total = sum(data)
                return total
            """,
        )
        assert "RL006" not in rules_fired(result)

    def test_ignores_non_bench_modules(self, tmp_path):
        result = lint(
            tmp_path,
            "benchmarks/conftest.py",
            """
            def test_speed(benchmark):
                benchmark(lambda: 1 + 1)
            """,
        )
        assert "RL006" not in rules_fired(result)


# ----------------------------------------------------------------------
# RL007 compiled-kernel contract (+ JIT exemptions in RL001/RL002)
# ----------------------------------------------------------------------
class TestNativeKernels:
    def test_fires_on_njit_without_cache(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/flat/native.py",
            """
            try:
                from numba import njit
            except Exception:
                njit = None

            @njit(parallel=True)
            def _sweep_levels_kernel(order, out):
                for i in range(order.shape[0]):
                    out[i] = order[i]
            """,
        )
        assert "RL007" in rules_fired(result)

    def test_fires_on_bare_njit_decorator(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/flat/native.py",
            """
            try:
                from numba import njit
            except Exception:
                njit = None

            @njit
            def _path_round_kernel(idx, tgt):
                return idx + tgt
            """,
        )
        assert "RL007" in rules_fired(result)

    def test_fires_on_unguarded_numba_import(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/flat/native.py",
            """
            import numba
            from numba import njit
            """,
        )
        fired = [f for f in result.findings if f.rule == "RL007"]
        assert len(fired) == 2

    def test_silent_on_compliant_kernel_module(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/flat/native.py",
            """
            try:
                import numba
                from numba import njit
            except Exception:
                numba = None
                njit = None

            @njit(parallel=True, cache=True)
            def _sweep_levels_kernel(order, out):
                for i in range(order.shape[0]):
                    out[i] = order[i]

            @numba.njit(cache=True)
            def _path_round_kernel(idx, tgt):
                return idx + tgt
            """,
        )
        assert "RL007" not in rules_fired(result)

    def test_silent_on_importorskip_in_bench(self, tmp_path):
        result = lint(
            tmp_path,
            "benchmarks/bench_native.py",
            """
            import pytest

            numba = pytest.importorskip("numba")
            """,
        )
        assert "RL007" not in rules_fired(result)

    def test_applies_outside_kernel_modules(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/graph/designdb.py",
            """
            import numba
            """,
        )
        assert "RL007" in rules_fired(result)

    def test_rl001_exempts_jit_kernel_loops(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/flat/native.py",
            """
            try:
                from numba import njit, prange
            except Exception:
                njit = None

            @njit(parallel=True, cache=True)
            def _sweep_levels_kernel(order, nc, c_down):
                for j in prange(order.shape[0]):
                    i = order[j]
                    c_down[i] = float(nc[i])
            """,
        )
        fired = rules_fired(result)
        assert "RL001" not in fired
        assert "RL002" not in fired

    def test_rl001_still_fires_on_uncompiled_kernel_twin(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/flat/native.py",
            """
            def _sweep_levels_kernel(order, nc, c_down):
                for j in range(order.shape[0]):
                    c_down[j] = float(nc[j])
            """,
        )
        fired = rules_fired(result)
        assert "RL001" in fired
        assert "RL002" in fired


# ----------------------------------------------------------------------
# RL008 memmap lifetime
# ----------------------------------------------------------------------
class TestMemmapLifetime:
    def test_fires_on_raw_memmap_outside_store_package(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/flat/loader.py",
            """
            import numpy as np
            from repro.store.format import release_memmap

            def load(path, n):
                block = np.memmap(path, dtype=np.float64, mode="r", shape=(n,))
                total = float(block.sum())
                release_memmap(block)
                return total
            """,
        )
        assert "RL008" in rules_fired(result)

    def test_fires_on_unreleased_memmap_in_store_package(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/store/leaky.py",
            """
            import numpy as np

            def read_plane(path, n):
                block = np.memmap(path, dtype=np.float64, mode="r", shape=(n,))
                return float(block.sum())
            """,
        )
        assert "RL008" in rules_fired(result)

    def test_fires_on_unreleased_factory_mapping(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/store/consumer.py",
            """
            from repro.store.format import map_field

            def peek(path, spec, rows):
                window = map_field(path, spec, rows, "r")
                return float(window[0])
            """,
        )
        assert "RL008" in rules_fired(result)

    def test_silent_on_released_memmap_in_store_package(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/store/format.py",
            """
            import numpy as np

            def release_memmap(*maps):
                for mapping in maps:
                    if isinstance(mapping, np.memmap) and mapping.mode != "r":
                        mapping.flush()

            def read_plane(path, n):
                block = np.memmap(path, dtype=np.float64, mode="r", shape=(n,))
                total = float(block.sum())
                release_memmap(block)
                return total
            """,
        )
        assert "RL008" not in rules_fired(result)

    def test_silent_on_finalize_paired_factory_mapping(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/store/views.py",
            """
            import weakref

            from repro.store.format import map_field, release_memmap

            def view(owner, path, spec, rows):
                window = map_field(path, spec, rows, "r")
                weakref.finalize(owner, release_memmap, window)
                return window
            """,
        )
        assert "RL008" not in rules_fired(result)

    def test_silent_on_factory_itself(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/store/format.py",
            """
            import numpy as np

            def map_field(path, spec, rows, mode):
                return np.memmap(path, dtype=np.float64, mode=mode, shape=(rows,))
            """,
        )
        assert "RL008" not in rules_fired(result)

    def test_silent_on_memmap_free_module(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/flat/clean.py",
            """
            import numpy as np

            def load(path):
                return np.load(path)
            """,
        )
        assert "RL008" not in rules_fired(result)


# ----------------------------------------------------------------------
# RL009 serve handler discipline
# ----------------------------------------------------------------------
class TestServeHandlers:
    def test_fires_on_direct_kernel_call_in_coroutine(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/serve/handlers.py",
            """
            async def query_slack(session, model):
                return session.graph.worst_slack(model)
            """,
        )
        assert "RL009" in rules_fired(result)

    def test_fires_on_direct_eco_call_in_coroutine(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/serve/handlers.py",
            """
            async def eco(session, net, parasitics):
                async with session.lock:
                    return session.graph.update_net(net, parasitics)
            """,
        )
        assert "RL009" in rules_fired(result)

    def test_fires_on_bare_name_call(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/serve/batching.py",
            """
            from repro.graph import analyze_scenarios

            async def corners(scenarios):
                return analyze_scenarios(scenarios)
            """,
        )
        assert "RL009" in rules_fired(result)

    def test_fires_in_nested_coroutine(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/serve/handlers.py",
            """
            async def outer(session):
                async def inner():
                    return session.graph.endpoint_slacks()
                return await inner()
            """,
        )
        assert "RL009" in rules_fired(result)

    def test_silent_on_executor_reference(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/serve/handlers.py",
            """
            async def query_slack(loop, executor, session, model):
                async with session.lock:
                    return await loop.run_in_executor(
                        executor, session.graph.worst_slack, model
                    )
            """,
        )
        assert "RL009" not in rules_fired(result)

    def test_silent_on_lambda_and_nested_def_thunks(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/serve/handlers.py",
            """
            async def query(loop, executor, session, swaps):
                def thunk():
                    return session.graph.whatif_resize_worst_slack(swaps)

                deferred = lambda: session.graph.certify()
                return await loop.run_in_executor(executor, thunk)
            """,
        )
        assert "RL009" not in rules_fired(result)

    def test_silent_on_sync_functions_in_serve_package(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/serve/session.py",
            """
            def whatif_scores(graph, swaps, model):
                return graph.whatif_resize_worst_slack(swaps, model)
            """,
        )
        assert "RL009" not in rules_fired(result)

    def test_silent_outside_serve_package(self, tmp_path):
        result = lint(
            tmp_path,
            "repro/apps/tuner.py",
            """
            async def sweep(graph, scenarios):
                return graph.analyze_scenarios(scenarios)
            """,
        )
        assert "RL009" not in rules_fired(result)
