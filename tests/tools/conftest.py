"""Make the repository root importable so ``tools.reprolint`` resolves.

The root ``conftest.py`` only inserts ``src`` (the runtime packages);
the linter lives in ``tools/`` next to it.
"""

import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
if _ROOT not in sys.path:
    sys.path.insert(0, _ROOT)
