"""Property test: backend choice is never a semantics change.

For random designs, random scenario sets and random shard/chunk
configurations, ``engine="process"`` must produce the same results as
``engine="numpy"`` -- pinned here at the documented 1e-12 relative
tolerance, though the engine's sharding actually guarantees bitwise
equality (shard solves never read across tree boundaries and keep the
per-tree reduction order).  The equivalence must survive random incremental
edit sequences (``update_net`` lumped/tree swaps, ``resize_instance`` cell
swaps): the sharded path reads the forest's current arrays at solve time
and caches nothing, so it invalidates exactly like the serial path.
"""

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tree import RCTree
from repro.generators import random_design, random_scenarios
from repro.graph import TimingGraph
from repro.sta.cells import standard_cell_library
from repro.sta.parasitics import lumped, rc_tree_parasitics

from tests.properties.topologies import TOPOLOGY_KINDS, pathological_net

LIBRARY = standard_cell_library()
FIELDS = ("tp", "tde", "tre", "total_capacitance")


def _assert_engine_parity(db, scenarios, engine, jobs=None):
    serial = db.solve_scenarios(scenarios, engine="numpy")
    other = db.solve_scenarios(scenarios, engine=engine, jobs=jobs)
    for name in FIELDS:
        want = getattr(serial, name)
        got = getattr(other, name)
        assert got.shape == want.shape, name
        scale = np.maximum(np.abs(want), 1e-18)
        assert np.all(np.abs(got - want) <= 1e-12 * scale), (
            name,
            engine,
            float(np.max(np.abs(got - want) / scale)),
            jobs,
        )


def _assert_backend_parity(db, scenarios, rng):
    _assert_engine_parity(db, scenarios, "process", jobs=rng.randint(2, 4))


def _random_edit(rng, graph):
    nets = graph.db.timed_nets()
    kind = rng.randrange(3)
    if kind == 0:
        net = rng.choice(nets)
        graph.update_net(net, lumped(net, rng.uniform(1e-16, 8e-14)))
    elif kind == 1:
        net = rng.choice(nets)
        loads = [str(load) for load in graph.db.nets[net].loads]
        tree = RCTree("root")
        previous = "root"
        for index in range(rng.randint(1, 3)):
            name = f"w{index}"
            tree.add_line(
                previous, name, rng.uniform(30.0, 600.0), rng.uniform(1e-15, 2e-14)
            )
            previous = name
        pin_nodes = {}
        for pin in loads:
            tree.add_resistor(previous, pin, rng.uniform(10.0, 100.0))
            tree.mark_output(pin)
            pin_nodes[pin] = pin
        graph.update_net(net, rc_tree_parasitics(net, tree, pin_nodes))
    else:
        instances = sorted(graph.db.instances)
        name = rng.choice(instances)
        cell = graph.db.instances[name].cell
        prefix, _, _ = cell.name.rpartition("_X")
        strength = (
            rng.choice([1, 2, 4]) if not cell.is_sequential else rng.choice([1, 2])
        )
        replacement = LIBRARY.get(f"{prefix}_X{strength}")
        if replacement is not None:
            graph.resize_instance(name, replacement)


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 2**20), st.integers(0, 2**20))
def test_process_engine_equals_numpy_engine(design_seed, sweep_seed):
    design, parasitics = random_design(40, seed=design_seed, sequential_fraction=0.2)
    rng = random.Random(sweep_seed)
    graph = TimingGraph(
        design,
        dict(parasitics),
        clock_period=1.4e-9,
        input_drive_resistance=140.0,
    )
    scenarios = random_scenarios(1 + rng.randrange(8), seed=rng.randrange(2**20))
    _assert_backend_parity(graph.db, scenarios, rng)

    # The sharded path must track incremental state exactly: edit, re-batch.
    graph.arrivals_matrix  # make the edits exercise the incremental path
    for _ in range(4):
        _random_edit(rng, graph)
    _assert_backend_parity(graph.db, scenarios, rng)

    # And the design-level report must agree too, post-edits.
    serial = graph.analyze_scenarios(scenarios, with_critical_paths=False)
    parallel = graph.analyze_scenarios(
        scenarios, with_critical_paths=False, engine="process", jobs=2
    )
    assert np.array_equal(serial.worst_slack, parallel.worst_slack)
    assert serial.verdicts == parallel.verdicts


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 2**20), st.integers(0, 2**20))
def test_every_engine_agrees_on_pathological_topologies(design_seed, sweep_seed):
    """numpy, process and contract agree on adversarial-shape parasitics.

    Nets are respliced to chains, stars, ladders etc.
    (``tests.properties.topologies``) before and between parity checks, so
    the explicit ``engine="contract"`` path and the per-shard kernel choice
    inside ``engine="process"`` both face depth extremes with live ECO
    state.
    """
    design, parasitics = random_design(24, seed=design_seed, sequential_fraction=0.2)
    rng = random.Random(sweep_seed)
    graph = TimingGraph(
        design,
        dict(parasitics),
        clock_period=1.4e-9,
        input_drive_resistance=140.0,
    )
    graph.arrivals_matrix  # make the edits exercise the incremental path
    nets = graph.db.timed_nets()
    for net in rng.sample(nets, min(4, len(nets))):
        loads = [str(load) for load in graph.db.nets[net].loads]
        graph.update_net(
            net,
            pathological_net(
                net,
                loads,
                kind=rng.choice(TOPOLOGY_KINDS),
                nodes=rng.randint(2, 60),
                seed=rng.randrange(2**20),
            ),
        )
    scenarios = random_scenarios(1 + rng.randrange(6), seed=rng.randrange(2**20))
    _assert_engine_parity(graph.db, scenarios, "contract")
    _assert_engine_parity(graph.db, scenarios, "process", jobs=rng.randint(2, 4))
    for _ in range(3):
        _random_edit(rng, graph)
    _assert_engine_parity(graph.db, scenarios, "contract")
    _assert_engine_parity(graph.db, scenarios, "process", jobs=rng.randint(2, 4))
