"""Property tests: the flat engine is a faithful twin of the dict engine.

The dict-based :func:`repro.core.timeconstants.characteristic_times_all` is
the reference oracle; the vectorized :class:`repro.flat.FlatTree` must agree
with it to a relative tolerance of 1e-12 on randomized trees containing both
lumped resistors and distributed URC lines, and incremental updates must
agree with a full recompute after arbitrary edit sequences.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.timeconstants import characteristic_times_all
from repro.core.tree import RCTree
from repro.flat import FlatTree

from tests.properties.strategies import capacitances, rc_trees, resistances
from tests.properties.topologies import topology_trees

RTOL = 1e-12


def _assert_parity(tree: RCTree, flat: FlatTree, solve_full: bool):
    reference = characteristic_times_all(tree, tree.nodes)
    if solve_full:
        flat.solve()
    for name, want in reference.items():
        got = flat.characteristic_times(name)
        assert np.isclose(got.tp, want.tp, rtol=RTOL, atol=0.0)
        assert np.isclose(got.tde, want.tde, rtol=RTOL, atol=1e-300)
        assert np.isclose(got.tre, want.tre, rtol=RTOL, atol=1e-300)
        assert np.isclose(got.ree, want.ree, rtol=RTOL, atol=0.0)
        assert np.isclose(
            got.total_capacitance, want.total_capacitance, rtol=RTOL, atol=0.0
        )


@settings(max_examples=60, deadline=None)
@given(tree=rc_trees(max_nodes=60, allow_distributed=True))
def test_flat_matches_dict_engine(tree):
    """Compile-and-solve parity on mixed lumped/distributed trees."""
    _assert_parity(tree, FlatTree.from_tree(tree), solve_full=True)


@settings(max_examples=40, deadline=None)
@given(tree=topology_trees(max_nodes=80))
def test_flat_matches_dict_engine_on_adversarial_topologies(tree):
    """Parity holds on every shape class (chains, stars, ladders, ...).

    ``rc_trees`` draws bushy O(log N)-depth trees; this variant sweeps the
    pathological shapes from ``tests.properties.topologies`` so the depth
    extremes the engines special-case stay oracle-pinned.
    """
    _assert_parity(tree, FlatTree.from_tree(tree), solve_full=True)


@settings(max_examples=40, deadline=None)
@given(tree=rc_trees(max_nodes=40, allow_distributed=True))
def test_flat_path_queries_match_dict_engine(tree):
    """The O(depth) single-output query path agrees with the oracle too."""
    _assert_parity(tree, FlatTree.from_tree(tree), solve_full=False)


@settings(max_examples=40, deadline=None)
@given(
    tree=rc_trees(max_nodes=30, allow_distributed=True),
    edits=st.lists(
        st.tuples(
            st.sampled_from(["cap", "res", "line"]),
            st.integers(min_value=0, max_value=10_000),
            resistances,
            capacitances,
        ),
        min_size=1,
        max_size=25,
    ),
)
def test_incremental_updates_equal_full_recompute(tree, edits):
    """A random edit sequence leaves the flat tree equal to a fresh compile.

    The same edits are applied to the flat tree (incrementally) and to a
    reconstructed RCTree (from scratch); the dict engine on the rebuilt tree
    is the oracle.
    """
    flat = FlatTree.from_tree(tree)
    flat.solve()
    non_root = [name for name in tree.nodes if name != tree.root]
    edge_state = {
        name: (tree.parent_edge(name).resistance, tree.parent_edge(name).capacitance)
        for name in non_root
    }
    node_caps = {name: tree.node_capacitance(name) for name in tree.nodes}
    for kind, pick, resistance, capacitance in edits:
        name = non_root[pick % len(non_root)]
        if kind == "cap":
            flat.update_capacitance(name, capacitance)
            node_caps[name] = capacitance
        elif kind == "res":
            flat.update_resistance(name, resistance)
            edge_state[name] = (resistance, edge_state[name][1])
        else:
            flat.update_line(name, resistance, capacitance)
            edge_state[name] = (resistance, capacitance)

    rebuilt = RCTree(tree.root)
    rebuilt.node(tree.root).capacitance = node_caps[tree.root]
    for name in tree.nodes:
        if name == tree.root:
            continue
        edge = tree.parent_edge(name)
        r, c = edge_state[name]
        if c > 0.0:
            rebuilt.add_line(edge.parent, name, r, c)
        else:
            rebuilt.add_resistor(edge.parent, name, r)
        rebuilt.set_capacitance(name, node_caps[name])
    _assert_parity(rebuilt, flat, solve_full=False)
    _assert_parity(rebuilt, flat, solve_full=True)
