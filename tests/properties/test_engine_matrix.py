"""The cross-engine parity matrix: every backend, every shape, every chunking.

One parametrized sweep asserting that ``numpy`` x ``process`` x ``contract``
x ``native`` (x worker counts x the scenario-chunk edge cases S=1, chunk=1,
chunk>S) agree at 1e-12 relative tolerance on every topology class of
``tests.properties.topologies`` -- and keep agreeing after forest-level
``replace_tree`` splices.  The ``native`` arms are graceful by design:
where Numba is not installed (or ``REPRO_DISABLE_NATIVE=1``) they degrade
to the numpy kernels -- still a matrix cell worth pinning, since the
degradation itself is part of the engine contract -- and with Numba they
run the JIT-compiled kernels, serial and sharded (``process`` x ``native``
composition).  (The design-level ECO axis -- ``update_net`` /
``resize_instance`` between parity checks -- is covered by
``test_parallel_parity.test_every_engine_agrees_on_pathological_topologies``.)

The ``numpy`` level sweeps are the reference; disagreement anywhere in the
matrix means a backend changed *semantics*, which the engine contract
forbids regardless of how it schedules the arithmetic.
"""

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flat import FlatForest

from tests.properties.topologies import (
    TOPOLOGY_KINDS,
    topology_flat_tree,
    topology_forests,
)

FIELDS = ("tp", "tde", "tre", "ree", "total_capacitance")

#: The engine x jobs arms compared against the ``numpy`` reference.  The
#: ``native`` arms compile where Numba exists and degrade to numpy where it
#: does not; ``("native", 2)`` is the process x native composition (compiled
#: kernel per shard).
ENGINE_ARMS = (
    ("contract", None),
    ("process", 2),
    ("process", 3),
    ("native", 1),
    ("native", 2),
)


def _planes(forest, count, rng):
    """Random (S, N) effective element planes around the forest's base values."""
    n = forest.node_count
    npr = np.random.default_rng(rng.randrange(2**32))

    def plane(base):
        return base[np.newaxis, :] * npr.uniform(0.5, 2.0, size=(count, n))

    return plane(forest._edge_r), plane(forest._edge_c), plane(forest._node_c)


def _chunk_cases(count):
    """The scenario-chunk edge cases: default, chunk=1, chunk>S, and S itself."""
    return (None, 1, count + 3, count)


def _assert_matrix(forest, count, rng):
    er, ec, nc = _planes(forest, count, rng)
    want = forest.solve_batch(er, ec, nc, engine="numpy")
    for engine, jobs in ENGINE_ARMS:
        for chunk in _chunk_cases(count):
            got = forest.solve_batch(
                er, ec, nc, engine=engine, jobs=jobs, scenario_chunk=chunk
            )
            for name in FIELDS:
                a = getattr(want, name)
                b = getattr(got, name)
                assert a.shape == b.shape, (engine, chunk, name)
                scale = np.maximum(np.abs(a), 1e-30)
                assert np.all(np.abs(b - a) <= 1e-12 * scale), (
                    engine,
                    jobs,
                    chunk,
                    name,
                    float(np.max(np.abs(b - a) / scale)),
                )


@settings(max_examples=8, deadline=None)
@given(
    forest=topology_forests(min_trees=2, max_trees=4, max_nodes=60),
    count=st.sampled_from((1, 3, 7)),
    seed=st.integers(0, 2**20),
)
def test_engine_matrix_agrees_on_every_topology(forest, count, seed):
    """All engine/jobs/chunk arms equal the level sweeps on mixed-shape forests.

    ``count=1`` pins the S=1 edge, and ``_chunk_cases`` sweeps chunk=1 /
    chunk>S / chunk=S for every arm, so the bounded-memory chunking loop is
    exercised on both its degenerate and its no-op configurations.
    """
    _assert_matrix(forest, count, random.Random(seed))


@settings(max_examples=6, deadline=None)
@given(
    forest=topology_forests(min_trees=2, max_trees=3, max_nodes=40),
    seed=st.integers(0, 2**20),
)
def test_engine_matrix_survives_replace_tree(forest, seed):
    """Parity holds after splicing a member tree to a different shape class.

    ``replace_tree`` changes node counts, depths and level buckets in place;
    every backend reads the forest's *current* arrays at solve time, so the
    matrix must agree both before and after the splice.
    """
    rng = random.Random(seed)
    _assert_matrix(forest, 3, rng)
    index = rng.randrange(len(forest))
    replacement = topology_flat_tree(
        rng.choice(TOPOLOGY_KINDS), rng.randint(2, 80), seed=rng.randrange(2**20)
    )
    forest.replace_tree(index, replacement)
    _assert_matrix(forest, 3, rng)


# ----------------------------------------------------------------------
# Server arms: the same parity matrix through repro.serve
# ----------------------------------------------------------------------
#
# The service tier must be engine-transparent: a session pinned to any
# registered backend answers byte-for-byte like a direct in-process graph
# using that backend, whether the session is in-RAM or store-backed.
# These arms are deterministic (no hypothesis): the interesting axis is
# the engine x storage product, not the topology distribution, and each
# arm spins up a real server.

SERVER_ENGINE_ARMS = ("numpy", "contract", "native")


def _serve_workload():
    from repro.generators.random_designs import random_design

    return random_design(90, seed=11)


def _serve_session_payload(design, parasitics, name, **overrides):
    from repro.serve.schema import parasitics_to_payload
    from repro.sta.netlist import design_to_dict

    payload = {
        "name": name,
        "netlist": design_to_dict(design),
        "parasitics": [parasitics_to_payload(p) for p in parasitics.values()],
    }
    payload.update(overrides)
    return payload


def _run_server_arm(engine, store_dir, hang_guard):
    import asyncio

    from repro.serve import ServeClient, TimingServer

    design, parasitics = _serve_workload()
    spec = [{"name": "typ"}, {"name": "slow", "r_derate": 1.2, "c_derate": 1.1}]
    overrides = {"engine": engine}
    if store_dir is not None:
        overrides["store_dir"] = store_dir

    async def main():
        server = TimingServer(port=0, tick=0.001)
        await server.start()
        client = ServeClient("127.0.0.1", server.port)
        try:
            await client.connect()
            await client.create_session(
                _serve_session_payload(design, parasitics, "m", **overrides)
            )
            slack = await client.slack("m")
            corners = await client.corners("m", spec, paths=True)
            whatif = None
            if store_dir is None:
                from repro.sta.cells import standard_cell_library

                library = standard_cell_library()
                instance = next(
                    name
                    for name, inst in sorted(design.instances.items())
                    if inst.cell.name == "INV_X1"
                )
                whatif = (
                    instance,
                    await client.whatif("m", [[instance, "INV_X2"]]),
                )
            return slack, corners, whatif
        finally:
            await client.close()
            await server.stop()

    return asyncio.run(asyncio.wait_for(main(), 120.0)), design, parasitics, spec


def _assert_server_arm(engine, store_dir, hang_guard):
    import json

    from repro.graph import DesignDB, TimingGraph
    from repro.scenarios import ScenarioSet
    from repro.sta.cells import standard_cell_library
    from repro.sta.delaycalc import DelayModel

    (slack, corners, whatif), design, parasitics, spec = _run_server_arm(
        engine, store_dir, hang_guard
    )
    direct = TimingGraph(DesignDB(design, parasitics))
    want = direct.worst_slack(DelayModel.UPPER_BOUND)
    assert abs(slack["worst_slack"] - want) <= 1e-12 * abs(want), engine

    expected_report = json.loads(
        json.dumps(
            direct.analyze_scenarios(
                ScenarioSet.from_dict(spec),
                path_model=DelayModel.UPPER_BOUND,
                engine=engine,
            ).to_dict()
        )
    )
    assert corners["report"] == expected_report, engine

    if whatif is not None:
        instance, response = whatif
        library = standard_cell_library()
        expected = direct.whatif_resize_worst_slack(
            [(instance, library["INV_X2"])], engine=engine
        )
        got = response["scores"][0]
        assert abs(got - expected[0]) <= 1e-12 * abs(expected[0]), engine


def test_server_arms_match_direct_calls_in_ram(hang_guard):
    """Sessions pinned to each engine answer like direct graphs (in-RAM)."""
    for engine in SERVER_ENGINE_ARMS:
        _assert_server_arm(engine, None, hang_guard)


def test_server_arms_match_direct_calls_store_backed(hang_guard, tmp_path):
    """Store-backed sessions agree with in-RAM direct graphs per engine."""
    for engine in SERVER_ENGINE_ARMS:
        _assert_server_arm(engine, str(tmp_path / engine), hang_guard)
