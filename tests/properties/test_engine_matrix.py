"""The cross-engine parity matrix: every backend, every shape, every chunking.

One parametrized sweep asserting that ``numpy`` x ``process`` x ``contract``
x ``native`` (x worker counts x the scenario-chunk edge cases S=1, chunk=1,
chunk>S) agree at 1e-12 relative tolerance on every topology class of
``tests.properties.topologies`` -- and keep agreeing after forest-level
``replace_tree`` splices.  The ``native`` arms are graceful by design:
where Numba is not installed (or ``REPRO_DISABLE_NATIVE=1``) they degrade
to the numpy kernels -- still a matrix cell worth pinning, since the
degradation itself is part of the engine contract -- and with Numba they
run the JIT-compiled kernels, serial and sharded (``process`` x ``native``
composition).  (The design-level ECO axis -- ``update_net`` /
``resize_instance`` between parity checks -- is covered by
``test_parallel_parity.test_every_engine_agrees_on_pathological_topologies``.)

The ``numpy`` level sweeps are the reference; disagreement anywhere in the
matrix means a backend changed *semantics*, which the engine contract
forbids regardless of how it schedules the arithmetic.
"""

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flat import FlatForest

from tests.properties.topologies import (
    TOPOLOGY_KINDS,
    topology_flat_tree,
    topology_forests,
)

FIELDS = ("tp", "tde", "tre", "ree", "total_capacitance")

#: The engine x jobs arms compared against the ``numpy`` reference.  The
#: ``native`` arms compile where Numba exists and degrade to numpy where it
#: does not; ``("native", 2)`` is the process x native composition (compiled
#: kernel per shard).
ENGINE_ARMS = (
    ("contract", None),
    ("process", 2),
    ("process", 3),
    ("native", 1),
    ("native", 2),
)


def _planes(forest, count, rng):
    """Random (S, N) effective element planes around the forest's base values."""
    n = forest.node_count
    npr = np.random.default_rng(rng.randrange(2**32))

    def plane(base):
        return base[np.newaxis, :] * npr.uniform(0.5, 2.0, size=(count, n))

    return plane(forest._edge_r), plane(forest._edge_c), plane(forest._node_c)


def _chunk_cases(count):
    """The scenario-chunk edge cases: default, chunk=1, chunk>S, and S itself."""
    return (None, 1, count + 3, count)


def _assert_matrix(forest, count, rng):
    er, ec, nc = _planes(forest, count, rng)
    want = forest.solve_batch(er, ec, nc, engine="numpy")
    for engine, jobs in ENGINE_ARMS:
        for chunk in _chunk_cases(count):
            got = forest.solve_batch(
                er, ec, nc, engine=engine, jobs=jobs, scenario_chunk=chunk
            )
            for name in FIELDS:
                a = getattr(want, name)
                b = getattr(got, name)
                assert a.shape == b.shape, (engine, chunk, name)
                scale = np.maximum(np.abs(a), 1e-30)
                assert np.all(np.abs(b - a) <= 1e-12 * scale), (
                    engine,
                    jobs,
                    chunk,
                    name,
                    float(np.max(np.abs(b - a) / scale)),
                )


@settings(max_examples=8, deadline=None)
@given(
    forest=topology_forests(min_trees=2, max_trees=4, max_nodes=60),
    count=st.sampled_from((1, 3, 7)),
    seed=st.integers(0, 2**20),
)
def test_engine_matrix_agrees_on_every_topology(forest, count, seed):
    """All engine/jobs/chunk arms equal the level sweeps on mixed-shape forests.

    ``count=1`` pins the S=1 edge, and ``_chunk_cases`` sweeps chunk=1 /
    chunk>S / chunk=S for every arm, so the bounded-memory chunking loop is
    exercised on both its degenerate and its no-op configurations.
    """
    _assert_matrix(forest, count, random.Random(seed))


@settings(max_examples=6, deadline=None)
@given(
    forest=topology_forests(min_trees=2, max_trees=3, max_nodes=40),
    seed=st.integers(0, 2**20),
)
def test_engine_matrix_survives_replace_tree(forest, seed):
    """Parity holds after splicing a member tree to a different shape class.

    ``replace_tree`` changes node counts, depths and level buckets in place;
    every backend reads the forest's *current* arrays at solve time, so the
    matrix must agree both before and after the splice.
    """
    rng = random.Random(seed)
    _assert_matrix(forest, 3, rng)
    index = rng.randrange(len(forest))
    replacement = topology_flat_tree(
        rng.choice(TOPOLOGY_KINDS), rng.randint(2, 80), seed=rng.randrange(2**20)
    )
    forest.replace_tree(index, replacement)
    _assert_matrix(forest, 3, rng)
