"""Property test: incremental cone re-timing is exact.

Random designs receive random edit sequences -- lumped-capacitance changes,
wholesale net-parasitic swaps (lumped <-> tree), and cell resizes -- applied
through :meth:`TimingGraph.update_net` / :meth:`TimingGraph.resize_instance`.
After every edit the incrementally maintained arrivals must equal a
from-scratch :class:`TimingGraph` over the same state at 1e-12 relative
tolerance, and both must match the legacy networkx
:class:`~repro.sta.analysis.TimingAnalyzer` -- the paper-faithful oracle --
in all three delay models.
"""

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tree import RCTree
from repro.generators import random_design
from repro.graph import TimingGraph
from repro.sta.analysis import TimingAnalyzer
from repro.sta.cells import standard_cell_library
from repro.sta.delaycalc import DelayModel
from repro.sta.parasitics import lumped, rc_tree_parasitics

MODELS = (DelayModel.ELMORE, DelayModel.UPPER_BOUND, DelayModel.LOWER_BOUND)
LIBRARY = standard_cell_library()


def _random_edit(rng, graph, parasitics):
    """Apply one random ECO edit to the graph, mirroring it into ``parasitics``."""
    nets = graph.db.timed_nets()
    kind = rng.randrange(3)
    if kind == 0:
        net = rng.choice(nets)
        edit = lumped(net, rng.uniform(1e-16, 8e-14))
        parasitics[net] = edit
        graph.update_net(net, edit)
    elif kind == 1:
        net = rng.choice(nets)
        loads = [str(load) for load in graph.db.nets[net].loads]
        tree = RCTree("root")
        previous = "root"
        for index in range(rng.randint(1, 3)):
            name = f"w{index}"
            tree.add_line(
                previous, name, rng.uniform(30.0, 600.0), rng.uniform(1e-15, 2e-14)
            )
            previous = name
        pin_nodes = {}
        for pin in loads:
            tree.add_resistor(previous, pin, rng.uniform(10.0, 100.0))
            tree.mark_output(pin)
            pin_nodes[pin] = pin
        edit = rc_tree_parasitics(net, tree, pin_nodes)
        parasitics[net] = edit
        graph.update_net(net, edit)
    else:
        instances = sorted(graph.db.instances)
        name = rng.choice(instances)
        cell = graph.db.instances[name].cell
        prefix, _, suffix = cell.name.rpartition("_X")
        strength = rng.choice([1, 2, 4]) if not cell.is_sequential else rng.choice([1, 2])
        replacement = LIBRARY.get(f"{prefix}_X{strength}")
        if replacement is not None:
            graph.resize_instance(name, replacement)


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 2**20), st.integers(0, 2**20))
def test_incremental_edit_sequences_stay_exact(design_seed, edit_seed):
    design, parasitics = random_design(
        36, seed=design_seed, sequential_fraction=0.2
    )
    clock_period = 1.5e-9
    graph = TimingGraph(design, dict(parasitics), clock_period=clock_period)
    graph.arrivals_matrix  # solve before editing: updates are incremental
    rng = random.Random(edit_seed)
    for _ in range(5):
        _random_edit(rng, graph, parasitics)

        fresh = TimingGraph(design, dict(parasitics), clock_period=clock_period)
        permutation = [fresh.vertex_names.index(n) for n in graph.vertex_names]
        np.testing.assert_allclose(
            graph.arrivals_matrix,
            fresh.arrivals_matrix[permutation],
            rtol=1e-12,
            atol=1e-28,
        )

    legacy = TimingAnalyzer(design, parasitics, clock_period=clock_period)
    for model in MODELS:
        report = legacy.run(model)
        mine = graph.arrivals(model)
        for pin, want in report.arrivals.items():
            assert abs(mine[pin] - want) <= 1e-12 * max(abs(want), 1e-18), (model, pin)
        assert abs(graph.worst_slack(model) - report.worst_slack) <= 1e-12 * max(
            abs(report.worst_slack), 1e-18
        )
