"""Property-based agreement between the three characteristic-time algorithms.

The paper presents two ways to get (T_P, T_De, T_Re): summing over every
capacitor with explicit shared resistances, and evaluating the constructive
two-port algebra.  This library adds a third (the linear-time recurrence over
the tree).  All three must agree on every tree hypothesis can construct.
"""

import pytest
from hypothesis import given, settings

from repro.algebra.compiler import tree_to_expression, tree_to_twoport, twoport_times
from repro.core.timeconstants import characteristic_times, characteristic_times_all

from tests.properties.strategies import trees_with_output


def assert_times_close(a, b, rel=1e-9):
    assert a.tp == pytest.approx(b.tp, rel=rel, abs=1e-30)
    assert a.tde == pytest.approx(b.tde, rel=rel, abs=1e-30)
    assert a.tre == pytest.approx(b.tre, rel=rel, abs=1e-30)
    assert a.ree == pytest.approx(b.ree, rel=rel, abs=1e-30)
    assert a.total_capacitance == pytest.approx(b.total_capacitance, rel=rel, abs=1e-30)


@settings(max_examples=60, deadline=None)
@given(trees_with_output())
def test_algebra_matches_direct_summation(tree_output):
    tree, output = tree_output
    assert_times_close(characteristic_times(tree, output), twoport_times(tree, output))


@settings(max_examples=60, deadline=None)
@given(trees_with_output())
def test_linear_time_recurrence_matches_direct_summation(tree_output):
    tree, output = tree_output
    direct = characteristic_times(tree, output)
    fast = characteristic_times_all(tree, [output])[output]
    assert_times_close(direct, fast)


@settings(max_examples=40, deadline=None)
@given(trees_with_output())
def test_expression_roundtrip_preserves_times(tree_output):
    """tree -> expression -> two-port gives the same numbers as the tree itself."""
    tree, output = tree_output
    direct = characteristic_times(tree, output)
    via_expression = tree_to_expression(tree, output).to_twoport().characteristic_times(output)
    assert_times_close(direct, via_expression)


@settings(max_examples=40, deadline=None)
@given(trees_with_output())
def test_twoport_ordering_invariant(tree_output):
    """The algebra never produces a vector violating T_R2 <= T_D2 <= T_P."""
    tree, output = tree_output
    assert tree_to_twoport(tree, output).satisfies_ordering()
