"""Hypothesis strategies for building random RC trees and elements."""

from hypothesis import strategies as st

from repro.core.tree import RCTree

#: Element-value strategies kept within a few orders of magnitude so that the
#: numerical comparisons in the properties stay well conditioned.
resistances = st.floats(min_value=1e-2, max_value=1e5, allow_nan=False, allow_infinity=False)
capacitances = st.floats(min_value=1e-16, max_value=1e-9, allow_nan=False, allow_infinity=False)
thresholds = st.floats(min_value=0.01, max_value=0.99, allow_nan=False, allow_infinity=False)


@st.composite
def rc_trees(draw, min_nodes=2, max_nodes=30, allow_distributed=True):
    """Draw a random RC tree with at least one capacitor and positive resistance.

    The topology is drawn as a random parent pointer for each new node (any
    already-created node may be the parent), which covers chains, stars and
    bushy trees; element values come from the module-level strategies.
    """
    node_count = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    tree = RCTree("in")
    names = ["in"]
    for index in range(1, node_count + 1):
        name = f"n{index}"
        parent = names[draw(st.integers(min_value=0, max_value=len(names) - 1))]
        resistance = draw(resistances)
        if allow_distributed and draw(st.booleans()):
            tree.add_line(parent, name, resistance, draw(capacitances))
        else:
            tree.add_resistor(parent, name, resistance)
        if draw(st.booleans()):
            tree.add_capacitor(name, draw(capacitances))
        names.append(name)
    if tree.total_capacitance <= 0.0:
        tree.add_capacitor(names[-1], draw(capacitances))
    for leaf in tree.leaves():
        tree.mark_output(leaf)
    return tree


@st.composite
def trees_with_output(draw, **kwargs):
    """Draw a tree plus one of its non-root nodes to use as the output."""
    tree = draw(rc_trees(**kwargs))
    candidates = [name for name in tree.nodes if name != tree.root]
    output = candidates[draw(st.integers(min_value=0, max_value=len(candidates) - 1))]
    return tree, output
