"""Property-based tests for the extension modules (moments, ramp bounds).

These mirror the invariants of the core theory for the extended machinery:
the first moment must always equal the Elmore delay, the moment-based
estimates must stay between the guaranteed bounds' extremes of plausibility
on well-behaved trees, and the ramp bounds must degrade gracefully toward
the step bounds.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import delay_bounds
from repro.core.excitation import RampResponseBounds
from repro.core.timeconstants import characteristic_times
from repro.moments.metrics import delay_d2m, delay_single_pole, fit_two_pole
from repro.moments.moments import transfer_moments

from tests.properties.strategies import trees_with_output


@settings(max_examples=40, deadline=None)
@given(trees_with_output(allow_distributed=False))
def test_first_transfer_moment_is_minus_elmore(tree_output):
    tree, output = tree_output
    moments = transfer_moments(tree, [output], order=1)[output]
    assert -moments[1] == pytest.approx(characteristic_times(tree, output).tde, rel=1e-9, abs=1e-30)


@settings(max_examples=40, deadline=None)
@given(trees_with_output(allow_distributed=False))
def test_moment_signs_alternate(tree_output):
    tree, output = tree_output
    moments = transfer_moments(tree, [output], order=4)[output]
    for order, value in enumerate(moments):
        if order % 2 == 0:
            assert value >= -1e-30
        else:
            assert value <= 1e-30


@settings(max_examples=30, deadline=None)
@given(trees_with_output(allow_distributed=False))
def test_two_pole_fit_is_stable(tree_output):
    """The AWE-2 fit always yields negative real poles (or falls back cleanly)."""
    tree, output = tree_output
    times = characteristic_times(tree, output)
    if times.tde <= 0.0:
        return
    moments = transfer_moments(tree, [output], order=3)[output]
    fit = fit_two_pole(moments)
    assert all(pole < 0 for pole in fit.poles)
    # Extreme time-constant spreads cost the closed-form residues a few
    # digits, so the endpoint checks use a loose absolute tolerance.
    assert fit.step_response(0.0) == pytest.approx(0.0, abs=1e-2)
    assert fit.step_response(1e9 * times.tp) == pytest.approx(1.0, abs=1e-6)


@settings(max_examples=30, deadline=None)
@given(trees_with_output(allow_distributed=False), st.floats(min_value=0.05, max_value=0.95))
def test_single_pole_and_d2m_lie_between_plausible_extremes(tree_output, threshold):
    """Both metrics are positive; D2M never exceeds sqrt(2) times the single-pole value.

    The ratio D2M / single-pole equals ``|mu_1| / sqrt(mu_2)``, and for a
    unit-mass non-negative impulse response ``mu_2 >= mu_1^2 / 2``, so the
    ratio is at most sqrt(2).
    """
    tree, output = tree_output
    times = characteristic_times(tree, output)
    if times.tde <= 0.0:
        return
    moments = transfer_moments(tree, [output], order=2)[output]
    one_pole = delay_single_pole(moments, threshold)
    d2m = delay_d2m(moments, threshold)
    assert one_pole > 0.0
    assert 0.0 < d2m <= one_pole * (2.0 ** 0.5) * (1 + 1e-9)


@settings(max_examples=15, deadline=None)
@given(
    trees_with_output(max_nodes=10, allow_distributed=False),
    st.floats(min_value=0.1, max_value=0.9),
)
def test_ramp_bounds_contain_step_bounds_shifted_window(tree_output, threshold):
    """Ramp delay bounds are never earlier than the step bounds and never later
    than the step bounds plus the full rise time."""
    tree, output = tree_output
    times = characteristic_times(tree, output)
    if times.tde <= 0.0:
        return
    step = delay_bounds(times, threshold)
    rise_time = 0.5 * times.tp
    ramp = RampResponseBounds(times, rise_time, samples=65).delay_bounds(threshold)
    assert ramp.lower >= step.lower - 1e-9 * max(step.upper, 1.0)
    assert ramp.upper <= step.upper + rise_time + 1e-9 * max(step.upper, 1.0)
    assert ramp.lower <= ramp.upper + 1e-12
