"""Property-based tests of the paper's structural invariants.

These are the statements the paper proves for *every* RC tree; hypothesis
generates arbitrary trees and checks them.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    delay_lower_bound,
    delay_upper_bound,
    voltage_lower_bound,
    voltage_upper_bound,
)
from repro.core.path import all_path_resistances, shared_resistances_to_output
from repro.core.timeconstants import characteristic_times

from tests.properties.strategies import thresholds, trees_with_output


@settings(max_examples=60, deadline=None)
@given(trees_with_output())
def test_eq7_ordering_holds_for_every_tree(tree_output):
    """Eq. (7): T_Re <= T_De <= T_P for any RC tree and any output."""
    tree, output = tree_output
    times = characteristic_times(tree, output)
    slack = 1e-12 * max(times.tp, 1e-30)
    assert times.tre <= times.tde + slack
    assert times.tde <= times.tp + slack


@settings(max_examples=60, deadline=None)
@given(trees_with_output())
def test_shared_resistance_bounded_by_path_resistances(tree_output):
    """R_ke <= R_kk and R_ke <= R_ee (Section III)."""
    tree, output = tree_output
    rkk = all_path_resistances(tree)
    shared = shared_resistances_to_output(tree, output)
    ree = rkk[output]
    for node in tree.nodes:
        assert shared[node] <= rkk[node] + 1e-12 * max(rkk[node], 1.0)
        assert shared[node] <= ree + 1e-12 * max(ree, 1.0)


@settings(max_examples=40, deadline=None)
@given(trees_with_output(), thresholds)
def test_delay_lower_bound_never_exceeds_upper_bound(tree_output, threshold):
    tree, output = tree_output
    times = characteristic_times(tree, output)
    lower = float(delay_lower_bound(times, threshold))
    upper = float(delay_upper_bound(times, threshold))
    assert lower >= 0.0
    assert lower <= upper * (1 + 1e-9) + 1e-30


@settings(max_examples=40, deadline=None)
@given(trees_with_output(), st.floats(min_value=0.0, max_value=50.0))
def test_voltage_bounds_ordered_and_in_unit_interval(tree_output, time_in_tp):
    tree, output = tree_output
    times = characteristic_times(tree, output)
    t = time_in_tp * times.tp
    lower = float(voltage_lower_bound(times, t))
    upper = float(voltage_upper_bound(times, t))
    # The two bounds are evaluated through different formulas; near v = 0 the
    # difference can round to a few ulps on the 1 V scale, so compare with an
    # absolute cushion far below any physical escape.
    assert 0.0 <= lower <= upper + 1e-12 and upper <= 1.0 + 1e-12


@settings(max_examples=30, deadline=None)
@given(trees_with_output())
def test_voltage_bounds_monotone_in_time(tree_output):
    """The envelopes are themselves monotone, like the response they bracket."""
    tree, output = tree_output
    times = characteristic_times(tree, output)
    grid = np.linspace(0.0, 10.0 * times.tp, 100)
    lower = voltage_lower_bound(times, grid)
    upper = voltage_upper_bound(times, grid)
    assert np.all(np.diff(lower) >= -1e-12)
    assert np.all(np.diff(upper) >= -1e-12)


@settings(max_examples=30, deadline=None)
@given(trees_with_output(), thresholds)
def test_delay_bounds_invert_voltage_bounds(tree_output, threshold):
    """Inverting: the voltage bound evaluated at its own delay bound recovers v."""
    tree, output = tree_output
    times = characteristic_times(tree, output)
    if times.tde <= 0.0:
        return
    upper_time = float(delay_upper_bound(times, threshold))
    assert float(voltage_lower_bound(times, upper_time)) <= threshold + 1e-6
    lower_time = float(delay_lower_bound(times, threshold))
    if lower_time > 0.0:
        assert float(voltage_upper_bound(times, lower_time)) >= threshold - 1e-6


@settings(max_examples=40, deadline=None)
@given(trees_with_output())
def test_tp_is_output_independent(tree_output):
    """T_P (eq. 5) does not depend on which node is taken as the output."""
    tree, _ = tree_output
    values = {characteristic_times(tree, node).tp for node in tree.nodes}
    assert max(values) - min(values) <= 1e-9 * max(values)
