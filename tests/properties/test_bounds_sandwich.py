"""Property-based check that the exact response always lies inside the bounds.

This is the paper's headline claim exercised adversarially: hypothesis builds
arbitrary (lumped) RC trees, the modal simulator computes the exact step
response, and the response must lie inside the Penfield-Rubinstein envelope
at every sampled time, while every threshold crossing must lie inside the
delay bounds.  Lumped trees are used so there is no discretisation error to
blur the comparison.
"""

import numpy as np
from hypothesis import given, settings

from repro.core.bounds import BoundedResponse, delay_lower_bound, delay_upper_bound
from repro.core.timeconstants import characteristic_times
from repro.simulate.compare import bounds_violations
from repro.simulate.state_space import exact_step_response

from tests.properties.strategies import trees_with_output


@settings(max_examples=30, deadline=None)
@given(trees_with_output(max_nodes=15, allow_distributed=False))
def test_exact_response_stays_inside_envelope(tree_output):
    tree, output = tree_output
    times = characteristic_times(tree, output)
    if times.tde <= 0.0:
        return  # output is resistively tied to the input: nothing to check
    response = exact_step_response(tree)
    waveform = response.waveform(output, 10.0 * times.tp, points=150)
    check = bounds_violations(waveform, BoundedResponse(times))
    # 1e-7 of the 1 V swing: room for eigensolver rounding on badly
    # conditioned (huge time-constant spread) trees, far below any real escape.
    assert check.within(1e-7)


@settings(max_examples=30, deadline=None)
@given(trees_with_output(max_nodes=15, allow_distributed=False))
def test_exact_crossings_stay_inside_delay_bounds(tree_output):
    tree, output = tree_output
    times = characteristic_times(tree, output)
    if times.tde <= 0.0:
        return
    response = exact_step_response(tree)
    for threshold in (0.25, 0.5, 0.75):
        exact = response.delay(output, threshold)
        lower = float(delay_lower_bound(times, threshold))
        upper = float(delay_upper_bound(times, threshold))
        # Room for eigensolver + crossing-search rounding on badly conditioned
        # trees (time-constant spreads of many orders of magnitude): a few
        # parts in 1e8 of the bound, far below any real escape.
        tolerance = 5e-8 * max(upper, 1e-30)
        assert lower - tolerance <= exact <= upper + tolerance


@settings(max_examples=25, deadline=None)
@given(trees_with_output(max_nodes=15, allow_distributed=False))
def test_exact_response_is_monotonic(tree_output):
    """Monotonicity of the step response (assumed and used by the paper)."""
    tree, output = tree_output
    times = characteristic_times(tree, output)
    if times.tde <= 0.0:
        return
    waveform = exact_step_response(tree).waveform(output, 10.0 * times.tp, points=200)
    # Same eigensolver-rounding budget as the envelope check above: badly
    # conditioned trees ripple at the 1e-8 level without being non-monotone.
    assert waveform.is_monotonic(tolerance=1e-7)


@settings(max_examples=25, deadline=None)
@given(trees_with_output(max_nodes=12, allow_distributed=False))
def test_elmore_delay_matches_simulated_first_moment(tree_output):
    tree, output = tree_output
    times = characteristic_times(tree, output)
    simulated = exact_step_response(tree).elmore_delay(output)
    # Hypothesis happily builds trees whose time constants span ten-plus
    # orders of magnitude; the modal sum then loses several digits to
    # cancellation, so this is a 0.5%-level sanity cross-check (the tight
    # agreement checks live in tests/integration/ on realistic networks).
    assert np.isclose(simulated, times.tde, rtol=5e-3, atol=1e-6 * times.tp)
