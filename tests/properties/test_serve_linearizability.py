"""Linearizability of the timing service under concurrent traffic.

The server's contract is that the per-session lock plus the version
counter define a *total order*: every response is as if the operations
executed one at a time in version order on a single in-process
:class:`~repro.graph.TimingGraph`.  This test drives a live server with
several concurrent clients issuing random interleavings of ECO edits
(``resize_instance``, ``update_net``), slack queries, and coalesced
what-if queries -- then replays the mutations serially, in the version
order the server assigned, on a plain direct graph, and checks every
response the server ever gave against the replayed state at that version,
to 1e-12.

If the writer lock ever let two ECOs interleave, the coalescer ever
scored a batch against half-applied state, or a query ever read between
the lock acquire and the version stamp, some response would disagree with
the serial replay and this test names the exact operation.
"""

import asyncio
import math
import random

import pytest

from repro.generators.random_designs import random_design
from repro.graph import DesignDB, TimingGraph
from repro.serve import ServeClient, TimingServer
from repro.serve.schema import parasitics_to_payload
from repro.sta.cells import standard_cell_library
from repro.sta.delaycalc import DelayModel
from repro.sta.netlist import design_to_dict
from repro.sta.parasitics import lumped

LIBRARY = standard_cell_library()
MODELS = ("elmore", "upper_bound", "lower_bound")
WORKERS = 4
OPS_PER_WORKER = 10
DEADLINE = 120.0


def _close(a, b):
    return math.isclose(a, b, rel_tol=1e-12, abs_tol=1e-18)


def _variants(cell_name):
    """Footprint-compatible library variants of ``cell_name``'s family."""
    family = cell_name.rsplit("_X", 1)[0]
    return [n for n in sorted(LIBRARY) if n.rsplit("_X", 1)[0] == family]


class _OpLog:
    """Operations observed by the workers, tagged with server versions."""

    def __init__(self):
        self.mutations = {}  # version -> ("resize"|"update_net", args)
        self.queries = []  # (version, kind, args, response_value)


async def _worker(client, session, rng, design, nets, log):
    instances = [
        name
        for name, inst in sorted(design.instances.items())
        if not inst.cell.is_sequential
    ]
    for _ in range(OPS_PER_WORKER):
        roll = rng.random()
        if roll < 0.25:
            instance = rng.choice(instances)
            cell = rng.choice(_variants(design.instances[instance].cell.name))
            response = await client.resize_instance(session, instance, cell)
            log.mutations[response["version"]] = ("resize", (instance, cell))
        elif roll < 0.5:
            net = rng.choice(nets)
            cap = rng.uniform(1e-15, 5e-14)
            response = await client.update_net(
                session, {"net": net, "lumped_capacitance": cap}
            )
            log.mutations[response["version"]] = ("update_net", (net, cap))
        elif roll < 0.75:
            model = rng.choice(MODELS)
            response = await client.slack(session, model=model)
            log.queries.append(
                (response["version"], "slack", model, response["worst_slack"])
            )
        else:
            swaps = []
            for _ in range(rng.randint(1, 3)):
                instance = rng.choice(instances)
                swaps.append(
                    [instance, rng.choice(_variants(design.instances[instance].cell.name))]
                )
            model = rng.choice(MODELS)
            response = await client.whatif(session, swaps, model=model)
            log.queries.append(
                (response["version"], "whatif", (swaps, model), response["scores"])
            )


def _replay_and_check(design, parasitics, log):
    """Serial replay in version order; every response must match."""
    graph = TimingGraph(DesignDB(design, parasitics))
    versions = sorted(log.mutations)
    assert versions == list(range(1, len(versions) + 1)), (
        "mutation versions must be dense and unique -- the writer lock "
        "must have admitted two ECOs at once"
    )
    by_version = {}
    for version, kind, args, value in log.queries:
        by_version.setdefault(version, []).append((kind, args, value))

    def check_queries_at(version):
        for kind, args, value in by_version.get(version, []):
            if kind == "slack":
                expected = graph.worst_slack(DelayModel(args))
                assert _close(value, expected), (
                    f"slack({args}) at version {version}: "
                    f"server {value} != replay {expected}"
                )
            else:
                swaps, model = args
                expected = graph.whatif_resize_worst_slack(
                    [(i, LIBRARY[c]) for i, c in swaps], DelayModel(model)
                )
                assert all(
                    _close(got, want) for got, want in zip(value, expected)
                ), (
                    f"whatif{swaps} at version {version}: "
                    f"server {value} != replay {list(expected)}"
                )

    check_queries_at(0)
    for version in versions:
        kind, args = log.mutations[version]
        if kind == "resize":
            instance, cell = args
            graph.resize_instance(instance, LIBRARY[cell])
        else:
            net, cap = args
            graph.update_net(net, lumped(net, cap))
        check_queries_at(version)
    stray = set(by_version) - set([0] + versions)
    assert not stray, f"queries observed at versions no mutation produced: {stray}"


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_concurrent_traffic_matches_serial_replay(seed, hang_guard):
    design, parasitics = random_design(100, seed=seed)
    db = DesignDB(design, parasitics)
    nets = sorted(db.timed_nets())
    session_payload = {
        "name": "lin",
        "netlist": design_to_dict(design),
        "parasitics": [parasitics_to_payload(p) for p in parasitics.values()],
    }
    log = _OpLog()

    async def main():
        server = TimingServer(port=0, tick=0.001)
        await server.start()
        clients = []
        try:
            admin = ServeClient("127.0.0.1", server.port)
            await admin.connect()
            clients.append(admin)
            await admin.create_session(session_payload)
            workers = []
            for index in range(WORKERS):
                client = ServeClient("127.0.0.1", server.port)
                await client.connect()
                clients.append(client)
                rng = random.Random(seed * 1000 + index)
                workers.append(
                    _worker(client, "lin", rng, design, nets, log)
                )
            await asyncio.wait_for(asyncio.gather(*workers), DEADLINE)
        finally:
            for client in clients:
                await client.close()
            await server.stop()

    asyncio.run(main())
    assert log.mutations or log.queries
    _replay_and_check(design, parasitics, log)
