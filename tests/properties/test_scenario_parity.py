"""Property test: the scenario axis is exactly a loop of the single engine.

For random designs and random scenario sets (corner derates, Monte-Carlo
perturbations, threshold / clock-period overrides, per-net scales), the
scenario-batched analysis must equal -- at 1e-12 relative tolerance, for all
three delay models -- a per-scenario loop that materializes each scenario as
scaled inputs (:func:`repro.scenarios.scaled_design` /
:func:`~repro.scenarios.scaled_parasitics`) and re-runs the single-scenario
:class:`~repro.graph.TimingGraph` from scratch.  The equivalence must
survive random incremental edit sequences (``update_net`` lumped/tree swaps
and ``resize_instance`` cell swaps): a batched solve after edits reflects
the database's current state exactly.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tree import RCTree
from repro.generators import random_design, random_scenarios
from repro.graph import TimingGraph
from repro.scenarios import Scenario, ScenarioSet, scaled_design, scaled_parasitics
from repro.sta.cells import standard_cell_library
from repro.sta.delaycalc import DelayModel
from repro.sta.parasitics import lumped, rc_tree_parasitics

from tests.properties.topologies import TOPOLOGY_KINDS, pathological_net

MODELS = (DelayModel.ELMORE, DelayModel.UPPER_BOUND, DelayModel.LOWER_BOUND)
LIBRARY = standard_cell_library()
PERIOD = 1.4e-9
THRESHOLD = 0.5
INPUT_DRIVE = 140.0


def _scenario_set(rng, nets):
    """Corners + MC + override-carrying scenarios over the design's own nets."""
    base = list(random_scenarios(4, seed=rng.randrange(2**20)))
    base.append(
        Scenario(
            "overrides",
            r_derate=rng.uniform(0.8, 1.3),
            threshold=rng.uniform(0.3, 0.8),
            clock_period=rng.uniform(0.5e-9, 3e-9),
        )
    )
    if nets:
        base.append(
            Scenario(
                "netted",
                net_scale={rng.choice(nets): rng.uniform(0.5, 1.8)},
            )
        )
    return ScenarioSet(base)


def _random_edit(rng, graph, parasitics):
    """One random ECO edit, mirrored into the ``parasitics`` oracle state."""
    nets = graph.db.timed_nets()
    kind = rng.randrange(3)
    if kind == 0:
        net = rng.choice(nets)
        edit = lumped(net, rng.uniform(1e-16, 8e-14))
        parasitics[net] = edit
        graph.update_net(net, edit)
    elif kind == 1:
        net = rng.choice(nets)
        loads = [str(load) for load in graph.db.nets[net].loads]
        tree = RCTree("root")
        previous = "root"
        for index in range(rng.randint(1, 3)):
            name = f"w{index}"
            tree.add_line(
                previous, name, rng.uniform(30.0, 600.0), rng.uniform(1e-15, 2e-14)
            )
            previous = name
        pin_nodes = {}
        for pin in loads:
            tree.add_resistor(previous, pin, rng.uniform(10.0, 100.0))
            tree.mark_output(pin)
            pin_nodes[pin] = pin
        edit = rc_tree_parasitics(net, tree, pin_nodes)
        parasitics[net] = edit
        graph.update_net(net, edit)
    else:
        instances = sorted(graph.db.instances)
        name = rng.choice(instances)
        cell = graph.db.instances[name].cell
        prefix, _, _ = cell.name.rpartition("_X")
        strength = rng.choice([1, 2, 4]) if not cell.is_sequential else rng.choice([1, 2])
        replacement = LIBRARY.get(f"{prefix}_X{strength}")
        if replacement is not None:
            graph.resize_instance(name, replacement)


def _assert_scenario_parity(graph, design, parasitics, scenarios):
    report = graph.analyze_scenarios(scenarios)
    for index, scenario in enumerate(scenarios):
        reference = TimingGraph(
            scaled_design(design, scenario),
            {
                name: scaled_parasitics(record, scenario)
                for name, record in parasitics.items()
            },
            clock_period=scenario.clock_period or PERIOD,
            threshold=(
                THRESHOLD if scenario.threshold is None else scenario.threshold
            ),
            input_drive_resistance=INPUT_DRIVE * scenario.drive_derate,
        )
        for column, model in enumerate(MODELS):
            want = reference.worst_slack(model)
            got = float(report.worst_slack[index, column])
            assert abs(got - want) <= 1e-12 * max(abs(want), 1e-18), (
                scenario.name,
                model,
            )
        assert report.verdicts[index] == reference.certify().name, scenario.name


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**20), st.integers(0, 2**20))
def test_scenario_batch_equals_single_engine_loop(design_seed, sweep_seed):
    design, parasitics = random_design(30, seed=design_seed, sequential_fraction=0.2)
    parasitics = dict(parasitics)
    rng = random.Random(sweep_seed)
    graph = TimingGraph(
        design,
        dict(parasitics),
        clock_period=PERIOD,
        threshold=THRESHOLD,
        input_drive_resistance=INPUT_DRIVE,
    )
    scenarios = _scenario_set(rng, graph.db.timed_nets())
    _assert_scenario_parity(graph, design, parasitics, scenarios)

    # The batched axis must track incremental state exactly: edit, re-batch.
    graph.arrivals_matrix  # ensure edits exercise the incremental path
    for _ in range(4):
        _random_edit(rng, graph, parasitics)
    _assert_scenario_parity(graph, design, parasitics, scenarios)


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 2**20), st.integers(0, 2**20))
def test_scenario_batch_on_pathological_topologies(design_seed, sweep_seed):
    """Scenario parity survives nets rewired to adversarial shapes.

    Several nets of a random design are respliced with chains, stars,
    ladders etc. (``tests.properties.topologies``), so the batched solve's
    engine choice faces depth-pathological parasitics while the
    per-scenario oracle loop stays shape-agnostic.
    """
    design, parasitics = random_design(24, seed=design_seed, sequential_fraction=0.2)
    parasitics = dict(parasitics)
    rng = random.Random(sweep_seed)
    graph = TimingGraph(
        design,
        dict(parasitics),
        clock_period=PERIOD,
        threshold=THRESHOLD,
        input_drive_resistance=INPUT_DRIVE,
    )
    graph.arrivals_matrix  # ensure edits exercise the incremental path
    nets = graph.db.timed_nets()
    for net in rng.sample(nets, min(4, len(nets))):
        loads = [str(load) for load in graph.db.nets[net].loads]
        edit = pathological_net(
            net,
            loads,
            kind=rng.choice(TOPOLOGY_KINDS),
            nodes=rng.randint(2, 40),
            seed=rng.randrange(2**20),
        )
        parasitics[net] = edit
        graph.update_net(net, edit)
    scenarios = _scenario_set(rng, nets)
    _assert_scenario_parity(graph, design, parasitics, scenarios)
