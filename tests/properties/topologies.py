"""Adversarial-topology generators shared by the cross-engine property tests.

``random_tree`` / ``random_forest`` draw bushy trees whose depth grows like
O(log N) -- friendly territory for the level sweeps.  The kernels' hard
cases are *shapes*: pure chains (maximal depth), stars (maximal fanout),
caterpillars (deep spine with leaves at every level), balanced and random
binary trees, and the paper's uniform-RC ladder (every edge a distributed
URC line).  This module builds each shape two ways from one seed:

* :func:`topology_flat_tree` -- straight into parent-index arrays via
  :meth:`~repro.flat.FlatTree.from_arrays`; the fast supply for forest-level
  engine-matrix tests and the 10k-node regression cases;
* :func:`topology_rc_tree` -- the same network as a dict-based
  :class:`~repro.core.tree.RCTree`, for oracle parity against
  :mod:`repro.core` and for splicing pathological parasitics into design
  nets (``rc_tree_parasitics``).

The hypothesis strategies (:func:`topology_kinds`, :func:`topology_trees`,
:func:`topology_forests`) are adopted by the flat-, scenario- and
parallel-parity suites and by ``test_engine_matrix.py``, so every engine is
exercised on every shape class, not just ``random_forest``.
"""

import random

from hypothesis import strategies as st

from repro.core.tree import RCTree
from repro.flat import FlatForest, FlatTree
from repro.sta.parasitics import rc_tree_parasitics

#: Every shape class the suites sweep.  ``chain`` and ``urc_ladder`` are the
#: depth-pathological ones that trigger the contraction engine; the rest pin
#: that shallow and mixed shapes keep choosing (and agreeing with) the level
#: sweeps.
TOPOLOGY_KINDS = (
    "chain",
    "star",
    "caterpillar",
    "balanced",
    "random_binary",
    "urc_ladder",
)

#: Element-value ranges: a few orders of magnitude, matching
#: ``strategies.RandomTreeConfig``-style supplies so parity comparisons stay
#: well conditioned.
R_RANGE = (1.0, 1000.0)
C_RANGE = (1e-15, 1e-12)


def topology_parents(kind, nodes, rng):
    """The parent-index list (root ``-1`` at index 0) of one shape class.

    ``nodes`` is the total node count including the root.  Topology only --
    element values are drawn separately so the same shape can carry many
    value sets.
    """
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    parent = [-1]
    if kind in ("chain", "urc_ladder"):
        parent += [index - 1 for index in range(1, nodes)]
    elif kind == "star":
        parent += [0] * (nodes - 1)
    elif kind == "caterpillar":
        # Even indices extend the spine, odd indices hang a leaf off it.
        spine = 0
        for index in range(1, nodes):
            if index % 2 == 1:
                parent.append(spine)
                spine = index
            else:
                parent.append(spine)
    elif kind == "balanced":
        parent += [(index - 1) // 2 for index in range(1, nodes)]
    elif kind == "random_binary":
        open_slots = [0, 0]
        for index in range(1, nodes):
            pick = rng.randrange(len(open_slots))
            open_slots[pick], open_slots[-1] = open_slots[-1], open_slots[pick]
            parent.append(open_slots.pop())
            open_slots += [index, index]
    else:
        raise ValueError(f"unknown topology kind {kind!r}")
    return parent


def topology_elements(kind, nodes, rng):
    """Seeded ``(edge_r, edge_c, node_c)`` value lists for one shape.

    The ``urc_ladder`` class puts all capacitance on the edges (a pure
    distributed ladder, Section 4 of the paper); every other class mixes
    lumped node capacitors with occasional distributed lines, and always
    ends up with positive total capacitance.
    """
    edge_r = [0.0]
    edge_c = [0.0]
    node_c = [0.0]
    for _ in range(1, nodes):
        edge_r.append(rng.uniform(*R_RANGE))
        if kind == "urc_ladder" or rng.random() < 0.3:
            edge_c.append(rng.uniform(*C_RANGE))
        else:
            edge_c.append(0.0)
        if kind != "urc_ladder" and rng.random() < 0.8:
            node_c.append(rng.uniform(*C_RANGE))
        else:
            node_c.append(0.0)
    if sum(edge_c) + sum(node_c) <= 0.0:
        node_c[-1] = rng.uniform(*C_RANGE)
    return edge_r, edge_c, node_c


def topology_flat_tree(kind, nodes, seed=0):
    """One shape compiled straight into a :class:`~repro.flat.FlatTree`.

    Array-native (no dict tree in between), so 10k-node chains build in
    milliseconds -- the supply for the regression and benchmark cases.
    """
    rng = random.Random(seed)
    parent = topology_parents(kind, nodes, rng)
    edge_r, edge_c, node_c = topology_elements(kind, nodes, rng)
    return FlatTree.from_arrays(
        parent,
        edge_r,
        edge_c,
        node_c,
        names=["in"] + [f"n{index}" for index in range(1, nodes)],
    )


def topology_rc_tree(kind, nodes, seed=0):
    """The same network as :func:`topology_flat_tree`, as a dict-based RCTree.

    Identical seed => identical parents and element values, so dict-engine
    oracle results are directly comparable with the flat build.  Leaves are
    marked as outputs (the common load situation).
    """
    rng = random.Random(seed)
    parent = topology_parents(kind, nodes, rng)
    edge_r, edge_c, node_c = topology_elements(kind, nodes, rng)
    names = ["in"] + [f"n{index}" for index in range(1, nodes)]
    tree = RCTree("in")
    for index in range(1, nodes):
        if edge_c[index] > 0.0:
            tree.add_line(names[parent[index]], names[index], edge_r[index], edge_c[index])
        else:
            tree.add_resistor(names[parent[index]], names[index], edge_r[index])
        if node_c[index] > 0.0:
            tree.add_capacitor(names[index], node_c[index])
    if tree.total_capacitance <= 0.0:
        tree.add_capacitor(names[-1], rng.uniform(*C_RANGE))
    for leaf in tree.leaves():
        tree.mark_output(leaf)
    return tree


def pathological_net(net, loads, kind="chain", nodes=20, seed=0):
    """Parasitics for ``net``: a pathological-shape tree feeding its loads.

    The shape's deepest node becomes the tap point; every load pin hangs off
    it through a small resistor.  Splicing these into a random design turns
    the design-level scenario/parallel parity suites into adversarial-shape
    suites without touching their scenario machinery.
    """
    rng = random.Random(seed)
    parent = topology_parents(kind, nodes, rng)
    edge_r, edge_c, node_c = topology_elements(kind, nodes, rng)
    names = ["root"] + [f"w{index}" for index in range(1, nodes)]
    tree = RCTree("root")
    for index in range(1, nodes):
        if edge_c[index] > 0.0:
            tree.add_line(names[parent[index]], names[index], edge_r[index], edge_c[index])
        else:
            tree.add_resistor(names[parent[index]], names[index], edge_r[index])
        if node_c[index] > 0.0:
            tree.add_capacitor(names[index], node_c[index])
    depth = [0] * nodes
    for index in range(1, nodes):
        depth[index] = depth[parent[index]] + 1
    tip = names[max(range(nodes), key=depth.__getitem__)]
    pin_nodes = {}
    for pin in loads:
        tree.add_resistor(tip, pin, rng.uniform(10.0, 100.0))
        tree.mark_output(pin)
        pin_nodes[pin] = pin
    if tree.total_capacitance <= 0.0:
        tree.add_capacitor(tip, rng.uniform(*C_RANGE))
    return rc_tree_parasitics(net, tree, pin_nodes)


def topology_kinds():
    """Strategy over the shape-class names."""
    return st.sampled_from(TOPOLOGY_KINDS)


@st.composite
def topology_trees(draw, min_nodes=2, max_nodes=80):
    """Strategy: one dict-based RCTree of a random shape class and seed."""
    kind = draw(topology_kinds())
    nodes = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    return topology_rc_tree(kind, nodes, seed)


@st.composite
def topology_forests(draw, min_trees=1, max_trees=4, min_nodes=2, max_nodes=80):
    """Strategy: a FlatForest mixing several shape classes.

    Mixed-shape forests are the sharded engine's adversarial case: one deep
    chain next to bushy neighbours forces the per-shard kernel choice to
    differ across workers within a single solve.
    """
    count = draw(st.integers(min_value=min_trees, max_value=max_trees))
    members = []
    for _ in range(count):
        kind = draw(topology_kinds())
        nodes = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
        seed = draw(st.integers(min_value=0, max_value=2**20))
        members.append(topology_flat_tree(kind, nodes, seed))
    return FlatForest(members)
