"""Tests for the rctree-bounds command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core.networks import figure7_tree
from repro.generators import random_design
from repro.spef.writer import write_spef
from repro.spicefmt.writer import write_spice
from repro.sta.netlist import write_design

FIG7_EXPRESSION = (
    "(URC 15 0) WC (URC 0 2) WC (WB (URC 8 0) WC URC 0 7) WC (URC 3 4) WC URC 0 9"
)


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for args in (
            ["analyze", "deck.sp"],
            ["expression", "URC 1 2"],
            ["experiments"],
            ["pla", "100"],
            ["timing", "--netlist", "d.json", "--period", "1e-9"],
        ):
            namespace = parser.parse_args(args)
            assert namespace.command == args[0]

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExpressionCommand:
    def test_prints_twoport_and_bounds(self, capsys):
        status = main(["expression", FIG7_EXPRESSION])
        captured = capsys.readouterr().out
        assert status == 0
        assert "TD2=363" in captured
        assert "delay to 0.5" in captured

    def test_custom_thresholds(self, capsys):
        status = main(["expression", FIG7_EXPRESSION, "--threshold", "0.7"])
        captured = capsys.readouterr().out
        assert status == 0
        assert "delay to 0.7" in captured
        assert "delay to 0.5" not in captured


class TestAnalyzeCommand:
    @pytest.fixture
    def deck_path(self, tmp_path):
        path = tmp_path / "fig7.sp"
        write_spice(figure7_tree(), path, segments_per_line=6)
        return str(path)

    def test_reports_characteristic_times(self, capsys, deck_path):
        status = main(["analyze", deck_path])
        captured = capsys.readouterr().out
        assert status == 0
        assert "T_De" in captured
        assert "out" in captured

    def test_certification_pass(self, capsys, deck_path):
        status = main(["analyze", deck_path, "--threshold", "0.5", "--deadline", "400"])
        captured = capsys.readouterr().out
        assert status == 0
        assert "PASS" in captured

    def test_certification_fail_sets_exit_code(self, capsys, deck_path):
        status = main(["analyze", deck_path, "--threshold", "0.9", "--deadline", "10"])
        captured = capsys.readouterr().out
        assert status == 1
        assert "FAIL" in captured

    def test_output_restriction(self, capsys, deck_path):
        main(["analyze", deck_path, "--output", "out"])
        captured = capsys.readouterr().out
        assert "output out" in captured


class TestPlaCommand:
    def test_pla_delay_report(self, capsys):
        status = main(["pla", "100"])
        captured = capsys.readouterr().out
        assert status == 0
        assert "100 minterms" in captured
        assert "ns" in captured


class TestExperimentsCommand:
    def test_single_experiment(self, capsys):
        status = main(["experiments", "figure10"])
        captured = capsys.readouterr().out
        assert status == 0
        assert "figure10" in captured
        assert "PASS" in captured


class TestTimingCommand:
    @pytest.fixture
    def design_files(self, tmp_path):
        design, parasitics = random_design(30, seed=5)
        netlist = tmp_path / "design.json"
        write_design(design, netlist)
        trees = {
            name: record.tree
            for name, record in parasitics.items()
            if record.tree is not None
        }
        spef = tmp_path / "design.spef"
        write_spef(trees, spef)
        return str(netlist), str(spef)

    def test_json_report_with_spef(self, capsys, design_files):
        netlist, spef = design_files
        status = main(
            ["timing", "--netlist", netlist, "--spef", spef, "--period", "5e-9"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert status == 0
        assert payload["verdict"] == "PASS"
        assert set(payload["worst_slack"]) == {"elmore", "upper_bound", "lower_bound"}
        assert payload["critical_path"][0]["arc"] == "startpoint"
        assert payload["worst_endpoint"]["upper_bound"] is not None

    def test_netlist_only_run(self, capsys, design_files):
        netlist, _ = design_files
        status = main(["timing", "--netlist", netlist, "--period", "5e-9"])
        payload = json.loads(capsys.readouterr().out)
        assert status == 0
        assert payload["clock_period"] == pytest.approx(5e-9)

    def test_fail_verdict_sets_exit_code(self, capsys, design_files):
        netlist, spef = design_files
        status = main(
            ["timing", "--netlist", netlist, "--spef", spef, "--period", "1e-12"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert status == 1
        assert payload["verdict"] == "FAIL"
        assert payload["worst_slack"]["lower_bound"] < 0.0

    def test_report_written_to_file(self, tmp_path, capsys, design_files):
        netlist, spef = design_files
        out = tmp_path / "report.json"
        main(
            [
                "timing", "--netlist", netlist, "--spef", spef,
                "--period", "5e-9", "--output", str(out),
            ]
        )
        capsys.readouterr()
        assert json.loads(out.read_text())["verdict"] == "PASS"

    def test_wire_cap_default_slows_design(self, capsys, design_files):
        netlist, _ = design_files
        main(["timing", "--netlist", netlist, "--period", "5e-9"])
        bare = json.loads(capsys.readouterr().out)
        main(
            [
                "timing", "--netlist", netlist, "--period", "5e-9",
                "--wire-cap", "200e-15",
            ]
        )
        loaded = json.loads(capsys.readouterr().out)
        assert loaded["worst_slack"]["elmore"] < bare["worst_slack"]["elmore"]

    def test_indeterminate_verdict_sets_exit_code_2(self, capsys, design_files):
        """A period between the two guaranteed bounds is INDETERMINATE -> 2."""
        netlist, spef = design_files
        main(["timing", "--netlist", netlist, "--spef", spef, "--period", "5e-9"])
        first = json.loads(capsys.readouterr().out)
        # Worst guaranteed-latest/-earliest arrivals from the slack report.
        latest = 5e-9 - first["worst_slack"]["upper_bound"]
        earliest = 5e-9 - first["worst_slack"]["lower_bound"]
        assert earliest < latest
        period = 0.5 * (earliest + latest)
        status = main(
            ["timing", "--netlist", netlist, "--spef", spef, "--period", str(period)]
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "INDETERMINATE"
        assert status == 2

    def test_model_selects_critical_path_model(self, capsys, design_files):
        netlist, spef = design_files
        status = main(
            [
                "timing", "--netlist", netlist, "--spef", spef,
                "--period", "5e-9", "--model", "elmore",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert status == 0
        assert payload["model"] == "elmore"
        # The traced path's endpoint arrival matches the Elmore worst slack.
        arrival = payload["critical_path"][-1]["arrival"]
        assert arrival == pytest.approx(5e-9 - payload["worst_slack"]["elmore"])


class TestTimingCorners:
    @pytest.fixture
    def corners_file(self, tmp_path):
        spec = {
            "scenarios": [
                {"name": "typical"},
                {
                    "name": "slow",
                    "r_derate": 1.3,
                    "c_derate": 1.25,
                    "drive_derate": 1.3,
                },
                {"name": "relaxed", "clock_period": 1e-6, "threshold": 0.7},
            ]
        }
        path = tmp_path / "corners.json"
        path.write_text(json.dumps(spec))
        return str(path)

    @pytest.fixture
    def design_files(self, tmp_path):
        design, parasitics = random_design(30, seed=5)
        netlist = tmp_path / "design.json"
        write_design(design, netlist)
        trees = {
            name: record.tree
            for name, record in parasitics.items()
            if record.tree is not None
        }
        spef = tmp_path / "design.spef"
        write_spef(trees, spef)
        return str(netlist), str(spef)

    def test_per_scenario_results_in_report(self, capsys, design_files, corners_file):
        netlist, spef = design_files
        status = main(
            [
                "timing", "--netlist", netlist, "--spef", spef,
                "--period", "5e-9", "--corners", corners_file,
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert status == 0
        names = [record["name"] for record in payload["scenarios"]]
        assert names == ["typical", "slow", "relaxed"]
        for record in payload["scenarios"]:
            assert set(record["worst_slack"]) == {
                "elmore", "upper_bound", "lower_bound",
            }
            assert record["verdict"] == "PASS"
        slow = payload["scenarios"][1]
        typical = payload["scenarios"][0]
        assert slow["worst_slack"]["upper_bound"] < typical["worst_slack"]["upper_bound"]
        assert payload["scenarios"][2]["clock_period"] == pytest.approx(1e-6)

    def test_overall_verdict_drives_exit_code(self, capsys, design_files, corners_file):
        netlist, spef = design_files
        status = main(
            [
                "timing", "--netlist", netlist, "--spef", spef,
                "--period", "1e-12", "--corners", corners_file,
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        # The relaxed 1us corner passes, but any failing corner fails the run.
        assert payload["scenarios"][2]["verdict"] == "PASS"
        assert payload["verdict"] == "FAIL"
        assert status == 1

    @pytest.mark.parametrize("engine", ["auto", "numpy", "contract"])
    def test_engine_flag_reaches_solver_with_identical_results(
        self, capsys, design_files, corners_file, engine
    ):
        """--engine pins the kernel backend; every backend reports alike."""
        from repro.parallel import last_selection

        netlist, spef = design_files
        base_args = [
            "timing", "--netlist", netlist, "--spef", spef,
            "--period", "5e-9", "--corners", corners_file,
        ]
        status = main(base_args)
        reference = json.loads(capsys.readouterr().out)
        assert status == 0
        status = main(base_args + ["--engine", engine])
        payload = json.loads(capsys.readouterr().out)
        assert status == 0
        record = last_selection()
        assert record["requested"] == (engine if engine != "auto" else "auto")
        if engine == "contract":
            assert record["engine"] == "contract"
        for got, want in zip(payload["scenarios"], reference["scenarios"]):
            for model, slack in want["worst_slack"].items():
                assert got["worst_slack"][model] == pytest.approx(
                    slack, rel=1e-12, abs=1e-21
                )

    def test_engine_requires_corners(self, capsys, design_files):
        netlist, _ = design_files
        with pytest.raises(SystemExit):
            main(
                [
                    "timing", "--netlist", netlist, "--period", "5e-9",
                    "--engine", "contract",
                ]
            )
        assert "--engine requires --corners" in capsys.readouterr().err


class TestTimingStore:
    @pytest.fixture
    def design_files(self, tmp_path):
        design, parasitics = random_design(30, seed=5)
        netlist = tmp_path / "design.json"
        write_design(design, netlist)
        trees = {
            name: record.tree
            for name, record in parasitics.items()
            if record.tree is not None
        }
        spef = tmp_path / "design.spef"
        write_spef(trees, spef)
        return str(netlist), str(spef)

    def test_store_run_matches_in_ram_report(self, capsys, tmp_path, design_files):
        netlist, spef = design_files
        status = main(
            ["timing", "--netlist", netlist, "--spef", spef, "--period", "5e-9"]
        )
        reference = json.loads(capsys.readouterr().out)
        store_dir = str(tmp_path / "design.store")
        store_status = main(
            [
                "timing", "--netlist", netlist, "--spef", spef,
                "--period", "5e-9", "--store", store_dir,
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert store_status == status == 0
        assert payload["verdict"] == reference["verdict"]
        for model, slack in reference["worst_slack"].items():
            assert payload["worst_slack"][model] == pytest.approx(
                slack, rel=1e-12, abs=1e-21
            )
        import os

        assert os.path.exists(os.path.join(store_dir, "manifest.json"))

    def test_store_corner_sweep(self, capsys, tmp_path, design_files):
        netlist, spef = design_files
        corners = tmp_path / "corners.json"
        corners.write_text(json.dumps({
            "scenarios": [
                {"name": "typ"},
                {"name": "slow", "r_derate": 1.2, "c_derate": 1.2},
            ]
        }), encoding="utf-8")
        status = main(
            [
                "timing", "--netlist", netlist, "--spef", spef,
                "--period", "5e-9", "--corners", str(corners),
            ]
        )
        reference = json.loads(capsys.readouterr().out)
        store_status = main(
            [
                "timing", "--netlist", netlist, "--spef", spef,
                "--period", "5e-9", "--corners", str(corners),
                "--store", str(tmp_path / "d.store"),
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert store_status == status
        assert payload["verdict"] == reference["verdict"]
        for got, want in zip(payload["scenarios"], reference["scenarios"]):
            for model, slack in want["worst_slack"].items():
                assert got["worst_slack"][model] == pytest.approx(
                    slack, rel=1e-12, abs=1e-21
                )
