"""Tests for the rctree-bounds command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.core.networks import figure7_tree
from repro.spicefmt.writer import write_spice

FIG7_EXPRESSION = (
    "(URC 15 0) WC (URC 0 2) WC (WB (URC 8 0) WC URC 0 7) WC (URC 3 4) WC URC 0 9"
)


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for args in (
            ["analyze", "deck.sp"],
            ["expression", "URC 1 2"],
            ["experiments"],
            ["pla", "100"],
        ):
            namespace = parser.parse_args(args)
            assert namespace.command == args[0]

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExpressionCommand:
    def test_prints_twoport_and_bounds(self, capsys):
        status = main(["expression", FIG7_EXPRESSION])
        captured = capsys.readouterr().out
        assert status == 0
        assert "TD2=363" in captured
        assert "delay to 0.5" in captured

    def test_custom_thresholds(self, capsys):
        status = main(["expression", FIG7_EXPRESSION, "--threshold", "0.7"])
        captured = capsys.readouterr().out
        assert status == 0
        assert "delay to 0.7" in captured
        assert "delay to 0.5" not in captured


class TestAnalyzeCommand:
    @pytest.fixture
    def deck_path(self, tmp_path):
        path = tmp_path / "fig7.sp"
        write_spice(figure7_tree(), path, segments_per_line=6)
        return str(path)

    def test_reports_characteristic_times(self, capsys, deck_path):
        status = main(["analyze", deck_path])
        captured = capsys.readouterr().out
        assert status == 0
        assert "T_De" in captured
        assert "out" in captured

    def test_certification_pass(self, capsys, deck_path):
        status = main(["analyze", deck_path, "--threshold", "0.5", "--deadline", "400"])
        captured = capsys.readouterr().out
        assert status == 0
        assert "PASS" in captured

    def test_certification_fail_sets_exit_code(self, capsys, deck_path):
        status = main(["analyze", deck_path, "--threshold", "0.9", "--deadline", "10"])
        captured = capsys.readouterr().out
        assert status == 1
        assert "FAIL" in captured

    def test_output_restriction(self, capsys, deck_path):
        main(["analyze", deck_path, "--output", "out"])
        captured = capsys.readouterr().out
        assert "output out" in captured


class TestPlaCommand:
    def test_pla_delay_report(self, capsys):
        status = main(["pla", "100"])
        captured = capsys.readouterr().out
        assert status == 0
        assert "100 minterms" in captured
        assert "ns" in captured


class TestExperimentsCommand:
    def test_single_experiment(self, capsys):
        status = main(["experiments", "figure10"])
        captured = capsys.readouterr().out
        assert status == 0
        assert "figure10" in captured
        assert "PASS" in captured
