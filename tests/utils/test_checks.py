"""Tests for the argument-validation helpers."""

import pytest

from repro.utils.checks import (
    require_finite,
    require_in_unit_interval,
    require_non_negative,
    require_positive,
    require_sorted,
)


class TestRequireFinite:
    def test_accepts_numbers(self):
        assert require_finite("x", 3) == 3.0
        assert require_finite("x", -2.5) == -2.5

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError, match="x"):
            require_finite("x", float("nan"))
        with pytest.raises(ValueError):
            require_finite("x", float("inf"))


class TestRequireNonNegative:
    def test_accepts_zero(self):
        assert require_non_negative("x", 0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_non_negative("x", -1e-30)


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive("x", 1e-30) == 1e-30

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            require_positive("x", 0.0)


class TestRequireInUnitInterval:
    def test_closed_interval(self):
        assert require_in_unit_interval("v", 0.0) == 0.0
        assert require_in_unit_interval("v", 1.0) == 1.0

    def test_open_interval(self):
        with pytest.raises(ValueError):
            require_in_unit_interval("v", 0.0, open_ends=True)
        with pytest.raises(ValueError):
            require_in_unit_interval("v", 1.0, open_ends=True)
        assert require_in_unit_interval("v", 0.5, open_ends=True) == 0.5

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            require_in_unit_interval("v", 1.1)


class TestRequireSorted:
    def test_accepts_sorted(self):
        assert require_sorted("xs", [1.0, 1.0, 2.0]) == [1.0, 1.0, 2.0]

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            require_sorted("xs", [1.0, 0.5])
