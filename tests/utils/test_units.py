"""Tests for engineering-unit formatting and parsing."""

import math

import pytest

from repro.utils.units import (
    format_engineering,
    ns_to_seconds,
    parse_engineering,
    seconds_to_ns,
)


class TestFormatEngineering:
    @pytest.mark.parametrize(
        "value,unit,expected",
        [
            (1.8e-10, "s", "180 ps"),
            (380.0, "ohm", "380 ohm"),
            (0.04e-12, "F", "40 fF"),
            (1.5e3, "Hz", "1.5 kHz"),
            (2.5e6, "Hz", "2.5 MHz"),
            (0.0, "F", "0 F"),
        ],
    )
    def test_examples(self, value, unit, expected):
        assert format_engineering(value, unit) == expected

    def test_negative_values(self):
        assert format_engineering(-2e-9, "s").startswith("-2 n")

    def test_no_unit_still_uses_prefix(self):
        assert format_engineering(1234.0) == "1.234 k"
        assert format_engineering(12.0) == "12"

    def test_nan_and_inf(self):
        assert "nan" in format_engineering(float("nan"), "s")
        assert "inf" in format_engineering(float("inf"), "s")
        assert format_engineering(float("-inf"), "s").startswith("-inf")

    def test_tiny_value_uses_smallest_prefix(self):
        assert "a" in format_engineering(5e-19, "F")


class TestParseEngineering:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1.5k", 1500.0),
            ("10p", 1e-11),
            ("10pF", 1e-11),
            ("3meg", 3e6),
            ("3MEG", 3e6),
            ("100", 100.0),
            ("1e-12", 1e-12),
            ("2.5E3", 2500.0),
            ("30ohm", 30.0),
            ("0.04pF", 0.04e-12),
            ("-5n", -5e-9),
            ("7u", 7e-6),
            ("2m", 2e-3),
            ("4G", 4e9),
        ],
    )
    def test_examples(self, text, expected):
        assert parse_engineering(text) == pytest.approx(expected)

    def test_whitespace_tolerated(self):
        assert parse_engineering("  42k ") == pytest.approx(42000.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_engineering("")

    def test_no_number_rejected(self):
        with pytest.raises(ValueError):
            parse_engineering("ohm")

    def test_roundtrip_with_format(self):
        for value in (1.8e-10, 47.0, 3.3e-15, 9.1e6):
            text = format_engineering(value)
            assert parse_engineering(text) == pytest.approx(value, rel=1e-3)


class TestTimeHelpers:
    def test_seconds_to_ns(self):
        assert seconds_to_ns(1e-9) == pytest.approx(1.0)

    def test_ns_to_seconds(self):
        assert ns_to_seconds(2.5) == pytest.approx(2.5e-9)

    def test_inverse(self):
        assert ns_to_seconds(seconds_to_ns(3.7e-8)) == pytest.approx(3.7e-8)
