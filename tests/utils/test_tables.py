"""Tests for the plain-text table formatter."""

import pytest

from repro.utils.tables import Table, format_table


class TestTable:
    def test_renders_headers_and_rows(self):
        table = Table(headers=["a", "b"])
        table.add_row([1, 2.5])
        table.add_row([10, 0.125])
        text = table.render()
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert len(lines) == 4  # header, rule, two rows

    def test_title_is_first_line(self):
        table = Table(headers=["x"], title="My table")
        assert table.render().splitlines()[0] == "My table"

    def test_row_length_checked(self):
        table = Table(headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_precision_applied_to_floats(self):
        table = Table(headers=["x"], precision=3)
        table.add_row([3.14159265])
        assert "3.14" in table.render()
        assert "3.1415" not in table.render()

    def test_columns_are_aligned(self):
        table = Table(headers=["name", "v"])
        table.add_row(["a", 1])
        table.add_row(["long-name", 100])
        lines = table.render().splitlines()
        assert len(lines[2]) == len(lines[3])

    def test_empty_table_renders_header_only(self):
        text = Table(headers=["a", "b"]).render()
        assert len(text.splitlines()) == 2

    def test_str_matches_render(self):
        table = Table(headers=["a"])
        table.add_row([1])
        assert str(table) == table.render()


class TestFormatTable:
    def test_one_shot_helper(self):
        text = format_table(["n", "delay"], [(1, 0.5), (2, 1.25)], title="sweep")
        assert text.splitlines()[0] == "sweep"
        assert "1.25" in text
