"""Tests for the scenario vocabulary: Scenario, ScenarioSet, ParameterPlane."""

import numpy as np
import pytest

from repro.core.exceptions import AnalysisError
from repro.core.networks import figure7_tree
from repro.scenarios import (
    ParameterPlane,
    Scenario,
    ScenarioSet,
    scaled_cell,
    scaled_parasitics,
    scaled_tree,
)
from repro.sta.cells import standard_cell_library
from repro.sta.parasitics import lumped, rc_tree_parasitics


class TestScenario:
    def test_defaults_are_nominal(self):
        scenario = Scenario("nom")
        assert scenario.r_derate == 1.0
        assert scenario.c_derate == 1.0
        assert scenario.drive_derate == 1.0
        assert scenario.clock_period is None
        assert scenario.threshold is None

    def test_validation(self):
        with pytest.raises(AnalysisError):
            Scenario("bad", r_derate=0.0)
        with pytest.raises(AnalysisError):
            Scenario("bad", c_derate=-1.0)
        with pytest.raises(AnalysisError):
            Scenario("bad", threshold=1.0)
        with pytest.raises(AnalysisError):
            Scenario("bad", clock_period=0.0)
        with pytest.raises(AnalysisError):
            Scenario("bad", net_scale={"n1": 0.0})

    def test_dict_round_trip(self):
        scenario = Scenario(
            "slow", r_derate=1.2, c_derate=1.1, drive_derate=1.3,
            clock_period=2e-9, threshold=0.6, net_scale={"n1": 1.4},
        )
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(AnalysisError):
            Scenario.from_dict({"name": "x", "voltage": 1.2})


class TestScenarioSet:
    def test_compiled_arrays(self):
        scenarios = ScenarioSet(
            [Scenario("a"), Scenario("b", r_derate=1.5, c_derate=0.8, drive_derate=2.0)]
        )
        np.testing.assert_array_equal(scenarios.r_derates, [1.0, 1.5])
        np.testing.assert_array_equal(scenarios.c_derates, [1.0, 0.8])
        np.testing.assert_array_equal(scenarios.drive_derates, [1.0, 2.0])

    def test_overrides_fall_back_to_defaults(self):
        scenarios = ScenarioSet(
            [Scenario("a"), Scenario("b", threshold=0.7, clock_period=3e-9)]
        )
        np.testing.assert_array_equal(scenarios.thresholds(0.5), [0.5, 0.7])
        np.testing.assert_array_equal(scenarios.clock_periods(1e-9), [1e-9, 3e-9])

    def test_net_scale_matrix(self):
        scenarios = ScenarioSet([Scenario("a"), Scenario("b", net_scale={"n2": 1.5})])
        matrix = scenarios.net_scales(["n1", "n2"])
        np.testing.assert_array_equal(matrix, [[1.0, 1.0], [1.0, 1.5]])

    def test_unique_names_required(self):
        with pytest.raises(AnalysisError):
            ScenarioSet([Scenario("x"), Scenario("x")])

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            ScenarioSet([])

    def test_sequence_protocol(self):
        scenarios = ScenarioSet.corners()
        assert len(scenarios) == 3
        assert scenarios[1].name == "slow"
        assert [s.name for s in scenarios] == scenarios.names
        assert scenarios[:2].names == ["typical", "slow"]

    def test_monte_carlo_is_seed_stable(self):
        a = ScenarioSet.monte_carlo(8, seed=5)
        b = ScenarioSet.monte_carlo(8, seed=5)
        c = ScenarioSet.monte_carlo(8, seed=6)
        np.testing.assert_array_equal(a.r_derates, b.r_derates)
        assert not np.array_equal(a.r_derates, c.r_derates)

    def test_set_dict_round_trip(self):
        scenarios = ScenarioSet.corners()
        again = ScenarioSet.from_dict(scenarios.to_dict())
        assert again.names == scenarios.names
        np.testing.assert_array_equal(again.r_derates, scenarios.r_derates)

    def test_from_dict_accepts_bare_list(self):
        scenarios = ScenarioSet.from_dict([{"name": "only", "r_derate": 1.1}])
        assert scenarios.names == ["only"]

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(AnalysisError):
            ScenarioSet.from_dict("nope")

    def test_tree_plane(self):
        plane = ScenarioSet.corners().tree_plane()
        assert isinstance(plane, ParameterPlane)
        assert plane.count == 3


class TestMaterialization:
    def test_scaled_cell(self):
        cell = standard_cell_library()["INV_X1"]
        scaled = scaled_cell(cell, Scenario("s", c_derate=2.0, drive_derate=0.5))
        assert scaled.input_capacitance == pytest.approx(2.0 * cell.input_capacitance)
        assert scaled.drive_resistance == pytest.approx(0.5 * cell.drive_resistance)
        assert scaled.intrinsic_delay == cell.intrinsic_delay

    def test_scaled_tree_scales_every_element(self):
        tree = figure7_tree()
        scaled = scaled_tree(tree, 2.0, 3.0)
        assert scaled.nodes == tree.nodes
        assert scaled.outputs == tree.outputs
        assert scaled.total_resistance == pytest.approx(2.0 * tree.total_resistance)
        assert scaled.total_capacitance == pytest.approx(3.0 * tree.total_capacitance)
        for name in tree.nodes:
            edge = tree.parent_edge(name)
            if edge is not None:
                assert scaled.parent_edge(name).is_distributed == edge.is_distributed

    def test_scaled_parasitics_applies_net_scale_to_wire_only(self):
        record = lumped("n1", 4e-15)
        scenario = Scenario("s", c_derate=1.5, net_scale={"n1": 2.0})
        assert scaled_parasitics(record, scenario).lumped_capacitance == pytest.approx(
            4e-15 * 1.5 * 2.0
        )

    def test_scaled_parasitics_keeps_pin_bindings(self):
        tree = figure7_tree()
        record = rc_tree_parasitics("n1", tree, {"u1/A": "out"})
        scaled = scaled_parasitics(record, Scenario("s", r_derate=1.3))
        assert scaled.pin_nodes == {"u1/A": "out"}
        assert scaled.tree.total_resistance == pytest.approx(
            1.3 * tree.total_resistance
        )
