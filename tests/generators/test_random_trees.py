"""Tests for the random RC-tree generators."""

import pytest

from repro.core.timeconstants import characteristic_times
from repro.generators.random_trees import (
    RandomTreeConfig,
    random_balanced_tree,
    random_chain,
    random_tree,
    random_trees,
)


class TestRandomTree:
    def test_deterministic_for_a_seed(self):
        a = random_tree(seed=7)
        b = random_tree(seed=7)
        assert a.nodes == b.nodes
        assert a.total_capacitance == pytest.approx(b.total_capacitance)
        assert a.total_resistance == pytest.approx(b.total_resistance)

    def test_different_seeds_differ(self):
        a = random_tree(seed=1)
        b = random_tree(seed=2)
        assert (
            a.total_capacitance != b.total_capacitance
            or a.total_resistance != b.total_resistance
        )

    def test_size_matches_config(self):
        tree = random_tree(seed=0, config=RandomTreeConfig(nodes=42))
        assert len(tree) == 43  # nodes + input

    def test_always_has_capacitance(self):
        config = RandomTreeConfig(nodes=10, capacitor_fraction=0.0, distributed_fraction=0.0)
        tree = random_tree(seed=3, config=config)
        assert tree.total_capacitance > 0.0

    def test_valid_and_analysable(self):
        for seed in range(5):
            tree = random_tree(seed=seed)
            tree.validate(require_capacitance=True, require_resistance=True)
            output = tree.outputs[0]
            times = characteristic_times(tree, output)
            times.check_ordering()

    def test_leaves_marked_as_outputs(self):
        tree = random_tree(seed=0)
        assert set(tree.outputs) == set(tree.leaves())

    def test_chain_config_gives_single_leaf(self):
        tree = random_tree(seed=0, config=RandomTreeConfig(nodes=15, branching_bias=0.0))
        assert len(tree.leaves()) == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RandomTreeConfig(nodes=0)
        with pytest.raises(ValueError):
            RandomTreeConfig(resistance_range=(0.0, 1.0))


class TestOtherGenerators:
    def test_random_trees_yields_count(self):
        trees = list(random_trees(4, seed=10))
        assert len(trees) == 4

    def test_random_chain_depth(self):
        chain = random_chain(12, seed=1)
        assert chain.depth(chain.leaves()[0]) == 12

    def test_balanced_tree_leaf_count(self):
        tree = random_balanced_tree(depth=3, fanout=2)
        assert len(tree.outputs) == 8
        tree.validate(require_capacitance=True)

    def test_balanced_tree_argument_validation(self):
        with pytest.raises(ValueError):
            random_balanced_tree(depth=0)
        with pytest.raises(ValueError):
            random_balanced_tree(depth=2, fanout=0)
