"""Tests for the random gate-level design generator."""

import pytest

from repro.generators import random_design
from repro.graph import TimingGraph
from repro.sta.delaycalc import DelayModel
from repro.sta.netlist import design_to_dict


class TestStructure:
    def test_instance_count(self):
        design, _ = random_design(40, seed=1)
        assert len(design.instances) == 40

    def test_design_validates(self):
        design, _ = random_design(80, seed=2)
        design.validate()

    def test_every_gate_reaches_an_endpoint(self):
        design, _ = random_design(50, seed=3)
        nets = design.connectivity()
        endpoints = set(design.primary_outputs)
        # Every driven net either has loads or was promoted to a primary output.
        for net in nets.values():
            if net.driver is not None and not net.driver.is_port:
                assert net.loads, f"net {net.name} is dangling"

    def test_parasitics_cover_exactly_the_timed_nets(self):
        design, parasitics = random_design(60, seed=4)
        nets = design.connectivity()
        clock_nets = set(design.clocks)
        timed = {
            name
            for name, net in nets.items()
            if net.driver is not None and net.loads and name not in clock_nets
        }
        assert set(parasitics) == timed

    def test_clock_only_declared_with_sequential_cells(self):
        design, _ = random_design(30, seed=5, sequential_fraction=0.0)
        assert design.clocks == []


class TestSeedStability:
    def test_same_seed_same_design(self):
        first, parasitics_a = random_design(45, seed=9)
        second, parasitics_b = random_design(45, seed=9)
        assert design_to_dict(first) == design_to_dict(second)
        assert set(parasitics_a) == set(parasitics_b)
        for name in parasitics_a:
            a, b = parasitics_a[name], parasitics_b[name]
            assert a.lumped_capacitance == b.lumped_capacitance
            assert (a.tree is None) == (b.tree is None)
            if a.tree is not None:
                assert a.tree.nodes == b.tree.nodes
                assert a.tree.total_capacitance == b.tree.total_capacitance

    def test_different_seeds_differ(self):
        first, _ = random_design(45, seed=9)
        second, _ = random_design(45, seed=10)
        assert design_to_dict(first) != design_to_dict(second)


class TestAnalysisReady:
    def test_timing_graph_runs(self):
        design, parasitics = random_design(70, seed=6)
        graph = TimingGraph(design, parasitics, clock_period=2e-9)
        assert graph.worst_slack(DelayModel.UPPER_BOUND) < graph.clock_period
        assert graph.endpoint_slacks(DelayModel.ELMORE)

    def test_rejects_non_positive_counts(self):
        with pytest.raises(ValueError):
            random_design(0)
