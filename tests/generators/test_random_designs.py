"""Tests for the random gate-level design generator."""

import pytest

from repro.generators import random_design
from repro.graph import TimingGraph
from repro.sta.delaycalc import DelayModel
from repro.sta.netlist import design_to_dict


class TestStructure:
    def test_instance_count(self):
        design, _ = random_design(40, seed=1)
        assert len(design.instances) == 40

    def test_design_validates(self):
        design, _ = random_design(80, seed=2)
        design.validate()

    def test_every_gate_reaches_an_endpoint(self):
        design, _ = random_design(50, seed=3)
        nets = design.connectivity()
        endpoints = set(design.primary_outputs)
        # Every driven net either has loads or was promoted to a primary output.
        for net in nets.values():
            if net.driver is not None and not net.driver.is_port:
                assert net.loads, f"net {net.name} is dangling"

    def test_parasitics_cover_exactly_the_timed_nets(self):
        design, parasitics = random_design(60, seed=4)
        nets = design.connectivity()
        clock_nets = set(design.clocks)
        timed = {
            name
            for name, net in nets.items()
            if net.driver is not None and net.loads and name not in clock_nets
        }
        assert set(parasitics) == timed

    def test_clock_only_declared_with_sequential_cells(self):
        design, _ = random_design(30, seed=5, sequential_fraction=0.0)
        assert design.clocks == []


class TestSeedStability:
    def test_same_seed_same_design(self):
        first, parasitics_a = random_design(45, seed=9)
        second, parasitics_b = random_design(45, seed=9)
        assert design_to_dict(first) == design_to_dict(second)
        assert set(parasitics_a) == set(parasitics_b)
        for name in parasitics_a:
            a, b = parasitics_a[name], parasitics_b[name]
            assert a.lumped_capacitance == b.lumped_capacitance
            assert (a.tree is None) == (b.tree is None)
            if a.tree is not None:
                assert a.tree.nodes == b.tree.nodes
                assert a.tree.total_capacitance == b.tree.total_capacitance

    def test_different_seeds_differ(self):
        first, _ = random_design(45, seed=9)
        second, _ = random_design(45, seed=10)
        assert design_to_dict(first) != design_to_dict(second)


class TestAnalysisReady:
    def test_timing_graph_runs(self):
        design, parasitics = random_design(70, seed=6)
        graph = TimingGraph(design, parasitics, clock_period=2e-9)
        assert graph.worst_slack(DelayModel.UPPER_BOUND) < graph.clock_period
        assert graph.endpoint_slacks(DelayModel.ELMORE)

    def test_rejects_non_positive_counts(self):
        with pytest.raises(ValueError):
            random_design(0)


class TestStreamRandomNets:
    """The out-of-core twin: NetBlock batches for shard-store ingest."""

    def _blocks(self, n=100, seed=3, **kwargs):
        from repro.generators import stream_random_nets

        return list(stream_random_nets(n, seed=seed, **kwargs))

    def test_emits_exactly_n_nets_in_bounded_blocks(self):
        blocks = self._blocks(n=100, block_nets=32)
        assert sum(b.tree_count for b in blocks) == 100
        assert all(b.tree_count <= 32 for b in blocks)
        assert [b.tree_count for b in blocks] == [32, 32, 32, 4]

    def test_blocks_are_valid_forest_slices(self):
        import numpy as np

        for block in self._blocks(n=60, block_nets=16, nodes_range=(2, 10)):
            assert block.starts[0] == 0
            assert block.starts[-1] == block.node_count
            assert len(block.starts) == block.tree_count + 1
            local = np.arange(block.node_count) - block.starts[
                np.searchsorted(block.starts, np.arange(block.node_count), "right") - 1
            ]
            roots = local == 0
            np.testing.assert_array_equal(block.parent[roots], -1)
            # Non-root parents are earlier nodes of the same tree.
            assert np.all(block.parent[~roots] < np.flatnonzero(~roots))
            np.testing.assert_array_equal(block.edge_r[roots], 0.0)
            np.testing.assert_array_equal(block.edge_c[roots], 0.0)

    def test_stream_is_seed_stable(self):
        import numpy as np

        first = self._blocks(n=50, seed=9)
        second = self._blocks(n=50, seed=9)
        for a, b in zip(first, second):
            for name in ("starts", "parent", "edge_r", "edge_c", "node_c"):
                np.testing.assert_array_equal(getattr(a, name), getattr(b, name))

    def test_different_seeds_differ(self):
        import numpy as np

        a = self._blocks(n=50, seed=1)[0]
        b = self._blocks(n=50, seed=2)[0]
        assert not np.array_equal(a.node_c, b.node_c)

    def test_value_ranges_respected(self):
        import numpy as np

        block = self._blocks(
            n=200, resistance_range=(10.0, 20.0), capacitance_range=(1e-15, 2e-15)
        )[0]
        nonroot = block.parent >= 0
        assert np.all(block.edge_r[nonroot] >= 10.0)
        assert np.all(block.edge_r[nonroot] <= 20.0)
        assert np.all(block.node_c >= 1e-15)
        assert np.all(block.node_c <= 2e-15)

    def test_validates_arguments(self):
        from repro.generators import stream_random_nets

        with pytest.raises(ValueError):
            list(stream_random_nets(0))
        with pytest.raises(ValueError):
            list(stream_random_nets(5, block_nets=0))
        with pytest.raises(ValueError):
            list(stream_random_nets(5, nodes_range=(1, 4)))
        with pytest.raises(ValueError):
            list(stream_random_nets(5, nodes_range=(6, 4)))
