"""Tests for the seed-stable random scenario generator."""

import numpy as np
import pytest

from repro.generators import random_scenarios


class TestRandomScenarios:
    def test_seed_stability(self):
        a = random_scenarios(16, seed=3)
        b = random_scenarios(16, seed=3)
        np.testing.assert_array_equal(a.r_derates, b.r_derates)
        np.testing.assert_array_equal(a.c_derates, b.c_derates)
        np.testing.assert_array_equal(a.drive_derates, b.drive_derates)
        assert a.names == b.names

    def test_different_seeds_differ(self):
        a = random_scenarios(16, seed=3)
        b = random_scenarios(16, seed=4)
        assert not np.array_equal(a.r_derates, b.r_derates)

    def test_corners_lead_the_batch(self):
        scenarios = random_scenarios(8, seed=0, corner_spread=0.2)
        assert scenarios.names[:3] == ["typical", "slow", "fast"]
        assert scenarios[0].r_derate == 1.0
        assert scenarios[1].r_derate == pytest.approx(1.2)
        assert scenarios[2].r_derate == pytest.approx(1.0 / 1.2)

    def test_small_counts_truncate_corners(self):
        assert random_scenarios(1, seed=0).names == ["typical"]
        assert random_scenarios(2, seed=0).names == ["typical", "slow"]

    def test_all_derates_positive(self):
        scenarios = random_scenarios(64, seed=12)
        assert np.all(scenarios.r_derates > 0)
        assert np.all(scenarios.c_derates > 0)
        assert np.all(scenarios.drive_derates > 0)

    def test_no_overrides_emitted(self):
        for scenario in random_scenarios(10, seed=1):
            assert scenario.clock_period is None
            assert scenario.threshold is None
            assert not scenario.net_scale

    def test_count_validation(self):
        with pytest.raises(ValueError):
            random_scenarios(0)
