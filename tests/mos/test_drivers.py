"""Tests for the linearised driver models."""

import pytest

from repro.mos.devices import DeviceType, MOSDevice
from repro.mos.drivers import (
    PAPER_SUPERBUFFER,
    DriverModel,
    inverter_driver,
    paper_pla_driver,
    superbuffer_driver,
)


class TestDriverModel:
    def test_paper_superbuffer_values(self):
        assert PAPER_SUPERBUFFER.effective_resistance == pytest.approx(380.0)
        assert PAPER_SUPERBUFFER.output_capacitance == pytest.approx(0.04e-12)

    def test_paper_pla_driver_alias(self):
        assert paper_pla_driver() is PAPER_SUPERBUFFER

    def test_scaled_driver_trades_resistance_for_capacitance(self):
        strong = PAPER_SUPERBUFFER.scaled(4.0)
        assert strong.effective_resistance == pytest.approx(95.0)
        assert strong.output_capacitance == pytest.approx(0.16e-12)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            DriverModel("bad", effective_resistance=0.0)
        with pytest.raises(ValueError):
            DriverModel("bad", effective_resistance=100.0, output_capacitance=-1.0)
        with pytest.raises(ValueError):
            PAPER_SUPERBUFFER.scaled(0.0)


class TestDriverConstructors:
    def test_inverter_driver_uses_pullup_resistance(self):
        pullup = MOSDevice(DeviceType.NMOS_DEPLETION, 4e-6, 16e-6)
        driver = inverter_driver("inv1", pullup, output_capacitance=0.02e-12)
        assert driver.effective_resistance == pytest.approx(pullup.effective_resistance)
        assert driver.output_capacitance == pytest.approx(0.02e-12)

    def test_superbuffer_is_twice_as_strong_as_plain_inverter(self):
        device = MOSDevice(DeviceType.NMOS_DEPLETION, 8e-6, 4e-6)
        plain = inverter_driver("plain", device)
        buffered = superbuffer_driver("super", device)
        assert buffered.effective_resistance == pytest.approx(
            plain.effective_resistance / 2.0
        )
