"""Tests for the MOS device models."""

import pytest

from repro.mos.devices import DeviceType, MOSDevice, effective_resistance


class TestMOSDevice:
    def test_aspect_ratio(self):
        device = MOSDevice(DeviceType.NMOS_ENHANCEMENT, width=8e-6, length=4e-6)
        assert device.aspect_ratio == pytest.approx(2.0)

    def test_effective_resistance_scales_inversely_with_width(self):
        narrow = MOSDevice(DeviceType.NMOS_ENHANCEMENT, 4e-6, 4e-6)
        wide = MOSDevice(DeviceType.NMOS_ENHANCEMENT, 16e-6, 4e-6)
        assert wide.effective_resistance == pytest.approx(narrow.effective_resistance / 4.0)

    def test_depletion_load_weaker_than_enhancement(self):
        enhancement = MOSDevice(DeviceType.NMOS_ENHANCEMENT, 4e-6, 4e-6)
        depletion = MOSDevice(DeviceType.NMOS_DEPLETION, 4e-6, 4e-6)
        assert depletion.effective_resistance > enhancement.effective_resistance

    def test_pmos_weaker_than_nmos(self):
        nmos = MOSDevice(DeviceType.NMOS_ENHANCEMENT, 4e-6, 4e-6)
        pmos = MOSDevice(DeviceType.PMOS, 4e-6, 4e-6)
        assert pmos.effective_resistance > nmos.effective_resistance

    def test_gate_capacitance(self):
        device = MOSDevice(DeviceType.NMOS_ENHANCEMENT, 4e-6, 4e-6)
        per_area = 8.63e-4
        assert device.gate_capacitance(per_area) == pytest.approx(per_area * 16e-12)

    def test_diffusion_capacitance(self):
        device = MOSDevice(DeviceType.NMOS_ENHANCEMENT, 4e-6, 4e-6)
        assert device.diffusion_capacitance(1e-4, 6e-6) == pytest.approx(1e-4 * 4e-6 * 6e-6)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            MOSDevice(DeviceType.NMOS_ENHANCEMENT, 0.0, 4e-6)
        with pytest.raises(ValueError):
            MOSDevice(DeviceType.NMOS_ENHANCEMENT, 4e-6, -1.0)

    def test_functional_wrapper(self):
        assert effective_resistance(DeviceType.PMOS, 8e-6, 4e-6) == pytest.approx(
            MOSDevice(DeviceType.PMOS, 8e-6, 4e-6).effective_resistance
        )
