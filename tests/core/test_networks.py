"""Tests for the reference-network constructors."""

import pytest

from repro.core.networks import (
    FIGURE7_TWOPORT,
    figure3_tree,
    figure7_tree,
    rc_ladder,
    single_line,
    symmetric_fanout,
)
from repro.core.timeconstants import characteristic_times


class TestFigure7Tree:
    def test_matches_published_twoport(self):
        times = characteristic_times(figure7_tree(), "out")
        ct, tp, r22, td2, tr2_r22 = FIGURE7_TWOPORT
        assert times.total_capacitance == pytest.approx(ct)
        assert times.tp == pytest.approx(tp)
        assert times.ree == pytest.approx(r22)
        assert times.tde == pytest.approx(td2)
        assert times.tre * times.ree == pytest.approx(tr2_r22)

    def test_marks_out_as_output(self):
        assert figure7_tree().outputs == ["out"]

    def test_has_distributed_line(self):
        assert any(edge.is_distributed for edge in figure7_tree().edges)


class TestFigure3Tree:
    def test_output_is_e(self):
        assert figure3_tree().outputs == ["e"]

    def test_has_five_resistors(self):
        assert len(figure3_tree().edges) == 5

    def test_custom_values(self):
        tree = figure3_tree(r1=10.0, r2=20.0, r3=30.0, r4=40.0, r5=50.0)
        assert tree.total_resistance == pytest.approx(150.0)


class TestSingleLine:
    def test_one_edge(self):
        tree = single_line(10.0, 2.0)
        assert len(tree.edges) == 1
        assert tree.edges[0].is_distributed

    def test_rejects_zero_values(self):
        with pytest.raises(ValueError):
            single_line(0.0, 1.0)
        with pytest.raises(ValueError):
            single_line(1.0, 0.0)


class TestRCLadder:
    def test_size(self):
        tree = rc_ladder(5, 1.0, 2.0)
        assert len(tree.edges) == 5
        assert tree.total_capacitance == pytest.approx(10.0)
        assert tree.outputs == ["out"]

    def test_single_section(self):
        tree = rc_ladder(1, 3.0, 4.0)
        assert tree.parent_of("out") == "in"

    def test_rejects_zero_sections(self):
        with pytest.raises(ValueError):
            rc_ladder(0, 1.0, 1.0)


class TestSymmetricFanout:
    def test_branch_count(self):
        tree = symmetric_fanout(5, 100.0, 10.0, 1e-12, 2e-12)
        assert len(tree.outputs) == 5
        assert tree.total_capacitance == pytest.approx(5 * (1e-12 + 2e-12))

    def test_rejects_zero_branches(self):
        with pytest.raises(ValueError):
            symmetric_fanout(0, 1.0, 1.0, 1.0, 1.0)
