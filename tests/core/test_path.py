"""Tests for path and shared-path resistances, including the Figure 3 identities."""

import pytest

from repro.core.networks import figure3_tree, figure7_tree
from repro.core.path import (
    all_path_resistances,
    path_resistance,
    resistance_between,
    shared_path_resistance,
    shared_resistances_to_output,
)


class TestFigure3:
    """The exact identities printed under the paper's Figure 3."""

    def test_rke_is_r1_plus_r2(self, fig3):
        assert shared_path_resistance(fig3, "k", "e") == pytest.approx(1.0 + 2.0)

    def test_rkk_is_r1_r2_r3(self, fig3):
        assert path_resistance(fig3, "k") == pytest.approx(1.0 + 2.0 + 3.0)

    def test_ree_is_r1_r2_r5(self, fig3):
        assert path_resistance(fig3, "e") == pytest.approx(1.0 + 2.0 + 5.0)

    def test_rke_not_larger_than_either_path(self, fig3):
        rke = shared_path_resistance(fig3, "k", "e")
        assert rke <= path_resistance(fig3, "k")
        assert rke <= path_resistance(fig3, "e")

    def test_symmetry(self, fig3):
        assert shared_path_resistance(fig3, "k", "e") == shared_path_resistance(fig3, "e", "k")


class TestPathResistance:
    def test_root_has_zero_path_resistance(self, fig7):
        assert path_resistance(fig7, "in") == 0.0

    def test_figure7_output_resistance(self, fig7):
        # R_ee of the Figure 7 network is 15 + 3 = 18 ohm.
        assert path_resistance(fig7, "out") == pytest.approx(18.0)

    def test_all_path_resistances_matches_individual(self, fig7):
        table = all_path_resistances(fig7)
        for node in fig7.nodes:
            assert table[node] == pytest.approx(path_resistance(fig7, node))

    def test_distributed_line_counts_full_resistance(self):
        from repro.core.tree import RCTree

        tree = RCTree()
        tree.add_line("in", "a", 7.0, 1.0)
        assert path_resistance(tree, "a") == pytest.approx(7.0)


class TestSharedResistances:
    def test_on_path_nodes_equal_their_own_resistance(self, fig7):
        shared = shared_resistances_to_output(fig7, "out")
        rkk = all_path_resistances(fig7)
        for node in fig7.path_nodes("out"):
            assert shared[node] == pytest.approx(rkk[node])

    def test_side_branch_uses_branch_point(self, fig7):
        shared = shared_resistances_to_output(fig7, "out")
        # Node b hangs off node a; its shared resistance with out is R(in->a) = 15.
        assert shared["b"] == pytest.approx(15.0)

    def test_shared_map_matches_pairwise(self, small_random_tree):
        tree = small_random_tree
        output = tree.leaves()[-1]
        shared = shared_resistances_to_output(tree, output)
        for node in tree.nodes:
            assert shared[node] == pytest.approx(
                shared_path_resistance(tree, node, output), rel=1e-12
            )


class TestResistanceBetween:
    def test_between_siblings(self, fig3):
        # e and k share R1 + R2; distance = R5 + R3.
        assert resistance_between(fig3, "e", "k") == pytest.approx(5.0 + 3.0)

    def test_between_node_and_itself_is_zero(self, fig7):
        assert resistance_between(fig7, "out", "out") == pytest.approx(0.0)

    def test_between_root_and_node_equals_path(self, fig7):
        assert resistance_between(fig7, "in", "out") == pytest.approx(
            path_resistance(fig7, "out")
        )
