"""Tests for the Penfield-Rubinstein bound formulas (eqs. 8-17)."""

import math

import numpy as np
import pytest

from repro.core.bounds import (
    BoundedResponse,
    delay_bound_table,
    delay_bounds,
    delay_lower_bound,
    delay_upper_bound,
    voltage_bound_table,
    voltage_bounds,
    voltage_lower_bound,
    voltage_upper_bound,
)
from repro.core.exceptions import AnalysisError, DegenerateNetworkError
from repro.core.networks import (
    FIGURE10_DELAY_ROWS,
    FIGURE10_VOLTAGE_ROWS,
    figure7_tree,
    single_line,
)
from repro.core.timeconstants import CharacteristicTimes, characteristic_times
from repro.core.tree import RCTree


class TestFigure10DelayTable:
    """Numeric agreement with the paper's printed TMIN/TMAX table."""

    @pytest.mark.parametrize("threshold,tmin,tmax", FIGURE10_DELAY_ROWS)
    def test_rows_match_paper(self, fig7_times, threshold, tmin, tmax):
        bounds = delay_bounds(fig7_times, threshold)
        assert bounds.lower == pytest.approx(tmin, rel=5e-4, abs=5e-3)
        assert bounds.upper == pytest.approx(tmax, rel=5e-4)

    def test_table_helper_matches_scalar_calls(self, fig7_times):
        thresholds = [row[0] for row in FIGURE10_DELAY_ROWS]
        table = delay_bound_table(fig7_times, thresholds)
        for (v, lo, hi), threshold in zip(table, thresholds):
            assert v == pytest.approx(threshold)
            assert lo == pytest.approx(float(delay_lower_bound(fig7_times, threshold)))
            assert hi == pytest.approx(float(delay_upper_bound(fig7_times, threshold)))


class TestFigure10VoltageTable:
    """Numeric agreement with the paper's printed VMIN/VMAX table."""

    @pytest.mark.parametrize("time,vmin,vmax", FIGURE10_VOLTAGE_ROWS)
    def test_rows_match_paper(self, fig7_times, time, vmin, vmax):
        bounds = voltage_bounds(fig7_times, time)
        assert bounds.lower == pytest.approx(vmin, abs=5e-5)
        assert bounds.upper == pytest.approx(vmax, abs=5e-5)

    def test_table_helper(self, fig7_times):
        times = [row[0] for row in FIGURE10_VOLTAGE_ROWS]
        table = voltage_bound_table(fig7_times, times)
        assert len(table) == len(times)
        assert all(lo <= hi for _, lo, hi in table)


class TestStructuralProperties:
    def test_lower_never_exceeds_upper_in_time(self, fig7_times):
        for threshold in np.linspace(0.01, 0.99, 25):
            assert float(delay_lower_bound(fig7_times, threshold)) <= float(
                delay_upper_bound(fig7_times, threshold)
            ) + 1e-12

    def test_lower_never_exceeds_upper_in_voltage(self, fig7_times):
        for time in np.linspace(0.0, 5000.0, 40):
            assert float(voltage_lower_bound(fig7_times, time)) <= float(
                voltage_upper_bound(fig7_times, time)
            ) + 1e-12

    def test_bounds_monotone_in_threshold(self, fig7_times):
        thresholds = np.linspace(0.05, 0.95, 19)
        lower = delay_lower_bound(fig7_times, thresholds)
        upper = delay_upper_bound(fig7_times, thresholds)
        assert np.all(np.diff(lower) >= -1e-12)
        assert np.all(np.diff(upper) >= -1e-12)

    def test_voltage_bounds_monotone_in_time(self, fig7_times):
        times = np.linspace(0.0, 4000.0, 200)
        assert np.all(np.diff(voltage_lower_bound(fig7_times, times)) >= -1e-12)
        assert np.all(np.diff(voltage_upper_bound(fig7_times, times)) >= -1e-12)

    def test_voltage_bounds_approach_one(self, fig7_times):
        assert float(voltage_lower_bound(fig7_times, 1e6)) > 0.999
        assert float(voltage_upper_bound(fig7_times, 1e6)) > 0.999

    def test_lower_bound_zero_before_tde_minus_tre(self, fig7_times):
        region_end = fig7_times.tde - fig7_times.tre
        assert float(voltage_lower_bound(fig7_times, 0.5 * region_end)) == 0.0
        assert float(voltage_lower_bound(fig7_times, 2.0 * region_end)) > 0.0

    def test_upper_bound_at_zero_is_one_minus_tde_over_tp(self, fig7_times):
        expected = 1.0 - fig7_times.tde / fig7_times.tp
        assert float(voltage_upper_bound(fig7_times, 0.0)) == pytest.approx(expected)

    def test_delay_lower_bound_at_zero_threshold_is_zero(self, fig7_times):
        assert float(delay_lower_bound(fig7_times, 0.0)) == 0.0

    def test_inversion_consistency(self, fig7_times):
        """t_max(v) is the inverse of v_min(t): v_min(t_max(v)) == v."""
        for threshold in (0.1, 0.3, 0.5, 0.7, 0.9):
            upper_time = float(delay_upper_bound(fig7_times, threshold))
            assert float(voltage_lower_bound(fig7_times, upper_time)) == pytest.approx(
                threshold, abs=1e-9
            )

    def test_inversion_consistency_lower(self, fig7_times):
        """t_min(v) is the inverse of v_max(t): v_max(t_min(v)) == v (when t_min > 0)."""
        for threshold in (0.3, 0.5, 0.7, 0.9):
            lower_time = float(delay_lower_bound(fig7_times, threshold))
            if lower_time > 0.0:
                assert float(voltage_upper_bound(fig7_times, lower_time)) == pytest.approx(
                    threshold, abs=1e-9
                )


class TestSingleRC:
    """For a single lumped RC the response is exact: both bounds coincide."""

    def make_times(self):
        tree = RCTree()
        tree.add_resistor("in", "out", 2.0)
        tree.add_capacitor("out", 3.0)
        return characteristic_times(tree, "out")

    def test_delay_bounds_coincide(self):
        times = self.make_times()
        for threshold in (0.1, 0.5, 0.632, 0.9):
            exact = 6.0 * math.log(1.0 / (1.0 - threshold))
            assert float(delay_lower_bound(times, threshold)) == pytest.approx(exact)
            assert float(delay_upper_bound(times, threshold)) == pytest.approx(exact)

    def test_voltage_bounds_coincide(self):
        times = self.make_times()
        for t in (0.5, 3.0, 6.0, 20.0):
            exact = 1.0 - math.exp(-t / 6.0)
            assert float(voltage_lower_bound(times, t)) == pytest.approx(exact)
            assert float(voltage_upper_bound(times, t)) == pytest.approx(exact)


class TestArgumentValidation:
    def test_threshold_must_be_below_one(self, fig7_times):
        with pytest.raises(AnalysisError):
            delay_bounds(fig7_times, 1.0)

    def test_threshold_must_be_non_negative(self, fig7_times):
        with pytest.raises(AnalysisError):
            delay_bounds(fig7_times, -0.1)

    def test_time_must_be_non_negative(self, fig7_times):
        with pytest.raises(AnalysisError):
            voltage_bounds(fig7_times, -1.0)

    def test_time_must_be_finite(self, fig7_times):
        with pytest.raises(AnalysisError):
            voltage_upper_bound(fig7_times, float("inf"))

    def test_degenerate_network_rejected(self):
        times = CharacteristicTimes(
            output="x", tp=0.0, tde=0.0, tre=0.0, ree=1.0, total_capacitance=0.0
        )
        with pytest.raises(DegenerateNetworkError):
            delay_bounds(times, 0.5)

    def test_output_at_input_gives_instantaneous_response(self):
        times = CharacteristicTimes(
            output="in", tp=10.0, tde=0.0, tre=0.0, ree=0.0, total_capacitance=1.0
        )
        assert float(delay_upper_bound(times, 0.9)) == 0.0
        assert float(voltage_lower_bound(times, 0.0)) == 1.0


class TestVectorised:
    def test_array_in_array_out(self, fig7_times):
        thresholds = np.array([0.1, 0.5, 0.9])
        lower = delay_lower_bound(fig7_times, thresholds)
        assert isinstance(lower, np.ndarray)
        assert lower.shape == (3,)

    def test_scalar_in_float_out(self, fig7_times):
        assert isinstance(delay_lower_bound(fig7_times, 0.5), float)
        assert isinstance(voltage_upper_bound(fig7_times, 10.0), float)


class TestBoundedResponse:
    def test_wraps_times(self, fig7_times):
        bounded = BoundedResponse(fig7_times)
        assert bounded.output == "out"
        assert bounded.times is fig7_times

    def test_delay_queries(self, fig7_times):
        bounded = BoundedResponse(fig7_times)
        assert bounded.worst_case_delay(0.5) == pytest.approx(314.149, rel=1e-4)
        assert bounded.best_case_delay(0.5) == pytest.approx(184.234, rel=1e-4)
        record = bounded.delay_bounds(0.5)
        assert record.width == pytest.approx(record.upper - record.lower)
        assert record.midpoint == pytest.approx((record.upper + record.lower) / 2)
        assert 0 < record.relative_width < 1

    def test_envelope_sampling(self, fig7_times):
        bounded = BoundedResponse(fig7_times)
        t, lo, hi = bounded.envelope(600.0, points=50)
        assert len(t) == 50
        assert np.all(lo <= hi + 1e-12)

    def test_envelope_rejects_bad_horizon(self, fig7_times):
        with pytest.raises(AnalysisError):
            BoundedResponse(fig7_times).envelope(0.0)

    def test_voltage_bounds_record(self, fig7_times):
        record = BoundedResponse(fig7_times).voltage_bounds(100.0)
        assert record.time == 100.0
        assert record.width == pytest.approx(record.upper - record.lower)
