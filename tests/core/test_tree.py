"""Unit tests for the RCTree network model."""

import pytest

from repro.core.elements import Capacitor, Resistor, URCLine
from repro.core.exceptions import (
    DegenerateNetworkError,
    DuplicateNodeError,
    ElementValueError,
    TopologyError,
    UnknownNodeError,
)
from repro.core.tree import RCTree


def small_tree():
    tree = RCTree("in")
    tree.add_resistor("in", "a", 10.0)
    tree.add_resistor("a", "b", 20.0)
    tree.add_resistor("a", "c", 30.0)
    tree.add_capacitor("b", 1e-12)
    tree.add_capacitor("c", 2e-12)
    tree.mark_output("b")
    return tree


class TestConstruction:
    def test_root_exists(self):
        tree = RCTree("src")
        assert tree.root == "src"
        assert "src" in tree
        assert len(tree) == 1

    def test_add_resistor_creates_child(self):
        tree = RCTree()
        edge = tree.add_resistor("in", "a", 5.0)
        assert edge.resistance == 5.0
        assert tree.parent_of("a") == "in"

    def test_add_line(self):
        tree = RCTree()
        edge = tree.add_line("in", "a", 3.0, 4.0)
        assert edge.is_distributed
        assert edge.capacitance == 4.0

    def test_unknown_parent_rejected(self):
        tree = RCTree()
        with pytest.raises(UnknownNodeError):
            tree.add_resistor("nope", "a", 1.0)

    def test_reparenting_rejected(self):
        tree = small_tree()
        with pytest.raises(TopologyError):
            tree.add_resistor("c", "b", 1.0)

    def test_self_loop_rejected(self):
        tree = small_tree()
        with pytest.raises(TopologyError):
            tree.add_resistor("b", "b", 1.0)

    def test_edge_into_root_rejected(self):
        tree = small_tree()
        with pytest.raises(TopologyError):
            tree.add_resistor("b", "in", 1.0)

    def test_duplicate_node_rejected(self):
        tree = small_tree()
        with pytest.raises(DuplicateNodeError):
            tree.add_node("a")

    def test_capacitor_accumulates(self):
        tree = small_tree()
        tree.add_capacitor("b", 3e-12)
        assert tree.node_capacitance("b") == pytest.approx(4e-12)

    def test_set_capacitance_replaces(self):
        tree = small_tree()
        tree.set_capacitance("b", 5e-12)
        assert tree.node_capacitance("b") == pytest.approx(5e-12)

    def test_capacitor_on_unknown_node(self):
        tree = small_tree()
        with pytest.raises(UnknownNodeError):
            tree.add_capacitor("zz", 1.0)

    def test_add_element_accepts_core_elements(self):
        tree = RCTree()
        tree.add_element("in", "a", Resistor(7.0))
        tree.add_element("a", "b", URCLine(1.0, 2.0))
        assert tree.parent_edge("b").is_distributed

    def test_add_element_rejects_capacitor(self):
        tree = RCTree()
        with pytest.raises(ElementValueError):
            tree.add_element("in", "a", Capacitor(1.0))


class TestQueries:
    def test_nodes_in_creation_order(self):
        tree = small_tree()
        assert tree.nodes == ["in", "a", "b", "c"]

    def test_outputs(self):
        tree = small_tree()
        assert tree.outputs == ["b"]
        tree.unmark_output("b")
        assert tree.outputs == []

    def test_children_and_leaves(self):
        tree = small_tree()
        assert tree.children_of("a") == ["b", "c"]
        assert set(tree.leaves()) == {"b", "c"}
        assert tree.is_leaf("b")
        assert not tree.is_leaf("a")

    def test_depth(self):
        tree = small_tree()
        assert tree.depth("in") == 0
        assert tree.depth("b") == 2

    def test_path_nodes_and_edges(self):
        tree = small_tree()
        assert tree.path_nodes("b") == ["in", "a", "b"]
        resistances = [edge.resistance for edge in tree.path_edges("b")]
        assert resistances == [10.0, 20.0]

    def test_ancestors(self):
        tree = small_tree()
        assert tree.ancestors("b") == ["a", "in"]
        assert tree.ancestors("in") == []

    def test_lca(self):
        tree = small_tree()
        assert tree.lca("b", "c") == "a"
        assert tree.lca("b", "b") == "b"
        assert tree.lca("b", "in") == "in"

    def test_preorder_parents_first(self):
        tree = small_tree()
        order = list(tree.preorder())
        assert order.index("in") < order.index("a") < order.index("b")

    def test_postorder_children_first(self):
        tree = small_tree()
        order = list(tree.postorder())
        assert order.index("b") < order.index("a")
        assert order[-1] == "in"

    def test_subtree_nodes(self):
        tree = small_tree()
        assert set(tree.subtree_nodes("a")) == {"a", "b", "c"}

    def test_totals(self):
        tree = small_tree()
        assert tree.total_resistance == pytest.approx(60.0)
        assert tree.total_capacitance == pytest.approx(3e-12)

    def test_subtree_capacitance_excludes_incoming_edge(self):
        tree = RCTree()
        tree.add_line("in", "a", 1.0, 5.0)
        tree.add_line("a", "b", 1.0, 7.0)
        tree.add_capacitor("b", 2.0)
        assert tree.subtree_capacitance("a") == pytest.approx(9.0)
        assert tree.subtree_capacitance("in") == pytest.approx(14.0)

    def test_unknown_node_queries(self):
        tree = small_tree()
        with pytest.raises(UnknownNodeError):
            tree.node("zz")
        with pytest.raises(UnknownNodeError):
            tree.path_edges("zz")


class TestValidationAndTransforms:
    def test_validate_passes_for_connected_tree(self):
        small_tree().validate()

    def test_validate_detects_floating_node(self):
        tree = small_tree()
        tree.add_node("floating")
        with pytest.raises(TopologyError):
            tree.validate()

    def test_validate_degenerate_checks(self):
        tree = RCTree()
        tree.add_resistor("in", "a", 1.0)
        with pytest.raises(DegenerateNetworkError):
            tree.validate(require_capacitance=True)
        tree2 = RCTree()
        tree2.add_node("x", capacitance=1.0)
        # x is floating; connect through zero-length edge for the resistance check
        tree3 = RCTree()
        tree3.add_resistor("in", "a", 0.0)
        tree3.add_capacitor("a", 1.0)
        with pytest.raises(DegenerateNetworkError):
            tree3.validate(require_resistance=True)

    def test_copy_is_independent(self):
        tree = small_tree()
        clone = tree.copy()
        clone.add_capacitor("b", 5e-12)
        assert tree.node_capacitance("b") == pytest.approx(1e-12)
        assert clone.node_capacitance("b") == pytest.approx(6e-12)
        assert clone.outputs == tree.outputs

    def test_lumped_preserves_totals(self):
        tree = RCTree()
        tree.add_line("in", "out", 10.0, 6.0)
        tree.add_capacitor("out", 1.0)
        for style in ("pi", "L"):
            lumped = tree.lumped(4, style=style)
            assert lumped.total_resistance == pytest.approx(10.0)
            assert lumped.total_capacitance == pytest.approx(7.0)
            assert "out" in lumped
            assert not any(edge.is_distributed for edge in lumped.edges)

    def test_lumped_keeps_lumped_edges_untouched(self):
        tree = small_tree()
        lumped = tree.lumped(7)
        assert len(lumped) == len(tree)
        assert lumped.total_resistance == pytest.approx(tree.total_resistance)

    def test_lumped_preserves_outputs(self):
        tree = RCTree()
        tree.add_line("in", "out", 10.0, 6.0)
        tree.mark_output("out")
        assert tree.lumped(5).outputs == ["out"]

    def test_lumped_rejects_bad_arguments(self):
        tree = small_tree()
        with pytest.raises(ElementValueError):
            tree.lumped(0)
        with pytest.raises(ElementValueError):
            tree.lumped(3, style="T")

    def test_to_networkx(self):
        graph = small_tree().to_networkx()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 3
        assert graph.nodes["b"]["is_output"]
        assert graph.edges["a", "b"]["resistance"] == 20.0

    def test_describe_mentions_elements(self):
        text = small_tree().describe()
        assert "total resistance" in text
        assert "in -> a" in text
