"""Tests for the characteristic times T_P, T_De, T_Re."""

import pytest

from repro.core.exceptions import AnalysisError, UnknownNodeError
from repro.core.networks import figure7_tree, rc_ladder, single_line, symmetric_fanout
from repro.core.timeconstants import (
    CharacteristicTimes,
    characteristic_times,
    characteristic_times_all,
    elmore_delay,
    elmore_delays,
)
from repro.core.tree import RCTree
from repro.generators.random_trees import RandomTreeConfig, random_tree


class TestSingleLine:
    """The paper's closed forms for one uniform RC line: TP = TDe = RC/2, TRe = RC/3."""

    def test_tp_and_tde_are_rc_over_2(self):
        times = characteristic_times(single_line(10.0, 4.0), "out")
        assert times.tp == pytest.approx(20.0)
        assert times.tde == pytest.approx(20.0)

    def test_tre_is_rc_over_3(self):
        times = characteristic_times(single_line(10.0, 4.0), "out")
        assert times.tre == pytest.approx(40.0 / 3.0)

    def test_ree_is_full_line_resistance(self):
        times = characteristic_times(single_line(10.0, 4.0), "out")
        assert times.ree == pytest.approx(10.0)


class TestFigure7:
    """The paper's Figure 10 session prints the 5-tuple (22, 419, 18, 363, 6033)."""

    def test_total_capacitance(self, fig7_times):
        assert fig7_times.total_capacitance == pytest.approx(22.0)

    def test_tp(self, fig7_times):
        assert fig7_times.tp == pytest.approx(419.0)

    def test_ree(self, fig7_times):
        assert fig7_times.ree == pytest.approx(18.0)

    def test_tde(self, fig7_times):
        assert fig7_times.tde == pytest.approx(363.0)

    def test_tre_ree_product(self, fig7_times):
        assert fig7_times.tre_ree == pytest.approx(6033.0)

    def test_ordering_eq7(self, fig7_times):
        assert fig7_times.tre <= fig7_times.tde <= fig7_times.tp
        fig7_times.check_ordering()

    def test_elmore_alias(self, fig7_times):
        assert fig7_times.elmore_delay == fig7_times.tde


class TestChainIdentity:
    def test_chain_without_branches_has_tde_equal_tp(self):
        # "For nonuniform RC lines (RC trees without side branches) T_De = T_P."
        tree = rc_ladder(8, 3.0, 2.0)
        times = characteristic_times(tree, "out")
        assert times.tde == pytest.approx(times.tp)

    def test_simple_rc_identities(self):
        tree = RCTree()
        tree.add_resistor("in", "out", 5.0)
        tree.add_capacitor("out", 3.0)
        times = characteristic_times(tree, "out")
        assert times.tp == pytest.approx(15.0)
        assert times.tde == pytest.approx(15.0)
        assert times.tre == pytest.approx(15.0)


class TestOutputLocation:
    def test_output_at_root_has_zero_times(self, fig7):
        times = characteristic_times(fig7, "in")
        assert times.tde == 0.0
        assert times.tre == 0.0
        assert times.ree == 0.0
        # T_P is output-independent and stays 419.
        assert times.tp == pytest.approx(419.0)

    def test_tp_identical_across_outputs(self, fig7):
        for node in fig7.nodes:
            assert characteristic_times(fig7, node).tp == pytest.approx(419.0)

    def test_side_branch_output(self, fig7):
        # For output b: R_bb = 23, Elmore = 15*22 + 8*7 = 386.
        times = characteristic_times(fig7, "b")
        assert times.ree == pytest.approx(23.0)
        assert times.tde == pytest.approx(15.0 * 22.0 + 8.0 * 7.0)

    def test_unknown_output_raises(self, fig7):
        with pytest.raises(UnknownNodeError):
            characteristic_times(fig7, "nope")


class TestLinearTimeAlgorithm:
    def test_matches_direct_on_figure7(self, fig7):
        table = characteristic_times_all(fig7, fig7.nodes)
        for node in fig7.nodes:
            direct = characteristic_times(fig7, node)
            fast = table[node]
            assert fast.tp == pytest.approx(direct.tp, rel=1e-12)
            assert fast.tde == pytest.approx(direct.tde, rel=1e-12)
            assert fast.tre == pytest.approx(direct.tre, rel=1e-12)
            assert fast.ree == pytest.approx(direct.ree, rel=1e-12)

    def test_matches_direct_on_random_trees(self, small_random_tree):
        tree = small_random_tree
        table = characteristic_times_all(tree, tree.nodes)
        for node in tree.nodes:
            direct = characteristic_times(tree, node)
            fast = table[node]
            assert fast.tde == pytest.approx(direct.tde, rel=1e-9, abs=1e-30)
            assert fast.tre == pytest.approx(direct.tre, rel=1e-9, abs=1e-30)
            assert fast.tp == pytest.approx(direct.tp, rel=1e-9, abs=1e-30)

    def test_defaults_to_marked_outputs(self, fig7):
        table = characteristic_times_all(fig7)
        assert set(table) == {"out"}

    def test_unknown_output_raises(self, fig7):
        with pytest.raises(UnknownNodeError):
            characteristic_times_all(fig7, ["zz"])


class TestFanout:
    def test_symmetric_fanout_outputs_identical(self):
        tree = symmetric_fanout(4, 100.0, 50.0, 2e-12, 1e-12)
        table = characteristic_times_all(tree)
        values = [times.tde for times in table.values()]
        assert len(values) == 4
        assert max(values) == pytest.approx(min(values))

    def test_more_branches_slow_every_output(self):
        few = characteristic_times(symmetric_fanout(2, 100.0, 50.0, 2e-12, 1e-12), "load1")
        many = characteristic_times(symmetric_fanout(6, 100.0, 50.0, 2e-12, 1e-12), "load1")
        assert many.tde > few.tde


class TestConvenienceWrappers:
    def test_elmore_delay_wrapper(self, fig7):
        assert elmore_delay(fig7, "out") == pytest.approx(363.0)

    def test_elmore_delays_wrapper(self, fig7):
        delays = elmore_delays(fig7, ["out", "b"])
        assert delays["out"] == pytest.approx(363.0)
        assert delays["b"] == pytest.approx(386.0)


class TestOrderingCheck:
    def test_check_ordering_raises_on_inconsistent_record(self):
        record = CharacteristicTimes(
            output="x", tp=1.0, tde=2.0, tre=0.5, ree=1.0, total_capacitance=1.0
        )
        with pytest.raises(AnalysisError):
            record.check_ordering()

    def test_describe_contains_key_numbers(self, fig7_times):
        text = fig7_times.describe()
        assert "419" in text and "363" in text
