"""Tests for the ramp-excitation (superposition) bounds."""

import numpy as np
import pytest

from repro.core.excitation import RampResponseBounds, ramp_delay_bounds, ramp_voltage_bounds
from repro.core.bounds import delay_bounds, voltage_bounds
from repro.core.networks import figure7_tree
from repro.core.timeconstants import characteristic_times
from repro.simulate.transient import ramp_input, transient_step_response


class TestConstruction:
    def test_rejects_bad_rise_time(self, fig7_times):
        with pytest.raises(ValueError):
            RampResponseBounds(fig7_times, 0.0)

    def test_rejects_too_few_samples(self, fig7_times):
        from repro.core.exceptions import AnalysisError

        with pytest.raises(AnalysisError):
            RampResponseBounds(fig7_times, 10.0, samples=3)

    def test_properties(self, fig7_times):
        bounds = RampResponseBounds(fig7_times, 50.0)
        assert bounds.rise_time == 50.0
        assert bounds.times is fig7_times


class TestLimits:
    def test_tiny_rise_time_recovers_step_bounds(self, fig7_times):
        ramp = ramp_delay_bounds(fig7_times, 1e-6, 0.5)
        step = delay_bounds(fig7_times, 0.5)
        assert ramp.lower == pytest.approx(step.lower, rel=1e-3)
        assert ramp.upper == pytest.approx(step.upper, rel=1e-3)

    def test_tiny_rise_time_voltage_bounds(self, fig7_times):
        ramp = ramp_voltage_bounds(fig7_times, 1e-6, 200.0)
        step = voltage_bounds(fig7_times, 200.0)
        assert ramp.lower == pytest.approx(step.lower, abs=1e-3)
        assert ramp.upper == pytest.approx(step.upper, abs=1e-3)

    def test_slower_ramp_means_later_crossing(self, fig7_times):
        fast = ramp_delay_bounds(fig7_times, 10.0, 0.5)
        slow = ramp_delay_bounds(fig7_times, 400.0, 0.5)
        assert slow.lower > fast.lower
        assert slow.upper > fast.upper

    def test_zero_time_gives_zero_voltage(self, fig7_times):
        bounds = RampResponseBounds(fig7_times, 100.0)
        assert float(bounds.vmin(0.0)) == 0.0
        assert float(bounds.vmax(0.0)) == 0.0


class TestStructure:
    def test_envelopes_ordered_and_monotone(self, fig7_times):
        bounds = RampResponseBounds(fig7_times, 150.0)
        grid = np.linspace(0.0, 3000.0, 40)
        lower = bounds.vmin(grid)
        upper = bounds.vmax(grid)
        assert np.all(lower <= upper + 1e-12)
        assert np.all(np.diff(lower) >= -1e-9)
        assert np.all(np.diff(upper) >= -1e-9)

    def test_delay_bounds_ordered(self, fig7_times):
        record = ramp_delay_bounds(fig7_times, 120.0, 0.7)
        assert 0.0 <= record.lower <= record.upper


class TestAgainstTransientSimulation:
    def test_simulated_ramp_response_inside_bounds(self, fig7, fig7_times):
        rise_time = 100.0
        bounds = RampResponseBounds(fig7_times, rise_time)
        result = transient_step_response(
            fig7, 2000.0, steps=4000, segments_per_line=40,
            input_function=ramp_input(rise_time),
        )
        waveform = result.waveform("out")
        grid = np.linspace(0.0, 2000.0, 50)
        exact = waveform(grid)
        lower = bounds.vmin(grid)
        upper = bounds.vmax(grid)
        assert np.all(exact >= lower - 3e-3)
        assert np.all(exact <= upper + 3e-3)

    def test_simulated_crossing_inside_delay_bounds(self, fig7, fig7_times):
        rise_time = 100.0
        bounds = RampResponseBounds(fig7_times, rise_time)
        result = transient_step_response(
            fig7, 3000.0, steps=4000, segments_per_line=40,
            input_function=ramp_input(rise_time),
        )
        exact = result.waveform("out").delay_to(0.5)
        record = bounds.delay_bounds(0.5)
        assert record.lower - 1.0 <= exact <= record.upper + 1.0
