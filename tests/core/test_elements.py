"""Unit tests for the circuit element value objects."""

import pytest

from repro.core.elements import Capacitor, Resistor, URCLine
from repro.core.exceptions import ElementValueError


class TestResistor:
    def test_holds_value(self):
        assert Resistor(15.0).resistance == 15.0

    def test_zero_resistance_is_legal(self):
        assert Resistor(0.0).resistance == 0.0

    def test_negative_resistance_rejected(self):
        with pytest.raises(ElementValueError):
            Resistor(-1.0)

    def test_nan_rejected(self):
        with pytest.raises(ElementValueError):
            Resistor(float("nan"))

    def test_capacitance_is_zero(self):
        assert Resistor(10.0).capacitance == 0.0

    def test_scaled(self):
        assert Resistor(10.0).scaled(2.5).resistance == 25.0

    def test_immutable(self):
        resistor = Resistor(10.0)
        with pytest.raises(AttributeError):
            resistor.resistance = 5.0

    def test_equality_by_value(self):
        assert Resistor(3.0) == Resistor(3.0)
        assert Resistor(3.0) != Resistor(4.0)


class TestCapacitor:
    def test_holds_value(self):
        assert Capacitor(2e-12).capacitance == 2e-12

    def test_negative_capacitance_rejected(self):
        with pytest.raises(ElementValueError):
            Capacitor(-1e-15)

    def test_infinite_rejected(self):
        with pytest.raises(ElementValueError):
            Capacitor(float("inf"))

    def test_resistance_is_zero(self):
        assert Capacitor(1e-12).resistance == 0.0

    def test_scaled(self):
        assert Capacitor(4.0).scaled(0.5).capacitance == 2.0


class TestURCLine:
    def test_holds_values(self):
        line = URCLine(3.0, 4.0)
        assert line.resistance == 3.0
        assert line.capacitance == 4.0

    def test_negative_values_rejected(self):
        with pytest.raises(ElementValueError):
            URCLine(-3.0, 4.0)
        with pytest.raises(ElementValueError):
            URCLine(3.0, -4.0)

    def test_pure_resistor_detection(self):
        assert URCLine(5.0, 0.0).is_pure_resistor
        assert not URCLine(5.0, 1.0).is_pure_resistor

    def test_pure_capacitor_detection(self):
        assert URCLine(0.0, 5.0).is_pure_capacitor
        assert not URCLine(1.0, 5.0).is_pure_capacitor

    def test_as_lumped_degenerates_to_resistor(self):
        assert URCLine(5.0, 0.0).as_lumped() == Resistor(5.0)

    def test_as_lumped_degenerates_to_capacitor(self):
        assert URCLine(0.0, 5.0).as_lumped() == Capacitor(5.0)

    def test_as_lumped_keeps_distributed_line(self):
        line = URCLine(5.0, 3.0)
        assert line.as_lumped() is line

    def test_split_preserves_totals(self):
        head, tail = URCLine(10.0, 4.0).split(0.25)
        assert head.resistance == pytest.approx(2.5)
        assert head.capacitance == pytest.approx(1.0)
        assert head.resistance + tail.resistance == pytest.approx(10.0)
        assert head.capacitance + tail.capacitance == pytest.approx(4.0)

    def test_split_rejects_bad_fraction(self):
        with pytest.raises(ElementValueError):
            URCLine(1.0, 1.0).split(1.5)

    def test_segments_preserve_totals(self):
        pieces = URCLine(9.0, 3.0).segments(3)
        assert len(pieces) == 3
        assert sum(p.resistance for p in pieces) == pytest.approx(9.0)
        assert sum(p.capacitance for p in pieces) == pytest.approx(3.0)

    def test_segments_rejects_zero_count(self):
        with pytest.raises(ElementValueError):
            URCLine(1.0, 1.0).segments(0)
