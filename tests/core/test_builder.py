"""Tests for the fluent TreeBuilder."""

import pytest

from repro.core.builder import TreeBuilder
from repro.core.timeconstants import characteristic_times


class TestTreeBuilder:
    def test_simple_chain(self):
        tree = (
            TreeBuilder("drv")
            .resistor(100.0, "a")
            .capacitor(1e-12)
            .line(50.0, 2e-12, "b", output=True)
            .build()
        )
        assert tree.root == "drv"
        assert tree.outputs == ["b"]
        assert tree.parent_of("b") == "a"
        assert tree.node_capacitance("a") == pytest.approx(1e-12)

    def test_auto_named_nodes(self):
        builder = TreeBuilder()
        builder.resistor(1.0).resistor(2.0).resistor(3.0)
        tree = builder.build()
        assert len(tree) == 4
        assert builder.cursor == "n3"

    def test_tap_does_not_move_cursor(self):
        builder = TreeBuilder()
        builder.resistor(10.0, "a")
        builder.tap("gate1", capacitance=1e-12, resistance=5.0)
        assert builder.cursor == "a"
        tree = builder.resistor(20.0, "b").build()
        assert tree.parent_of("gate1") == "a"
        assert tree.parent_of("b") == "a"

    def test_tap_marks_output(self):
        tree = TreeBuilder().resistor(1.0, "a").tap("g", 1e-12, output=True).build()
        assert tree.outputs == ["g"]

    def test_at_moves_cursor(self):
        builder = TreeBuilder().resistor(1.0, "a").resistor(2.0, "b")
        builder.at("a").resistor(3.0, "c")
        tree = builder.build()
        assert tree.parent_of("c") == "a"
        assert set(tree.children_of("a")) == {"b", "c"}

    def test_at_unknown_node_raises(self):
        with pytest.raises(KeyError):
            TreeBuilder().at("nope")

    def test_output_marks_cursor_by_default(self):
        tree = TreeBuilder().resistor(1.0, "a").output().build()
        assert tree.outputs == ["a"]

    def test_builder_reproduces_figure7(self, fig7_times):
        tree = (
            TreeBuilder("in")
            .resistor(15.0, "a")
            .capacitor(2.0)
            .tap("b", capacitance=7.0, resistance=8.0)
            .line(3.0, 4.0, "out", output=True)
            .capacitor(9.0)
            .build()
        )
        times = characteristic_times(tree, "out")
        assert times.tp == pytest.approx(fig7_times.tp)
        assert times.tde == pytest.approx(fig7_times.tde)
        assert times.tre == pytest.approx(fig7_times.tre)

    def test_build_validates_by_default(self):
        tree = TreeBuilder().resistor(1.0).capacitor(1.0).build()
        assert tree.total_capacitance == 1.0
