"""Tests for timing certification (the paper's OK function)."""

import pytest

from repro.core.certify import Verdict, certify, certify_tree, worst_output
from repro.core.networks import figure7_tree
from repro.core.timeconstants import characteristic_times


class TestVerdictValues:
    """The paper's OK returns 1 / 0 / -1; Verdict keeps those numeric values."""

    def test_numeric_values(self):
        assert int(Verdict.PASS) == 1
        assert int(Verdict.INDETERMINATE) == 0
        assert int(Verdict.FAIL) == -1


class TestCertify:
    def test_pass_when_deadline_beyond_upper_bound(self, fig7_times):
        certificate = certify(fig7_times, 0.5, deadline=400.0)
        assert certificate.verdict is Verdict.PASS
        assert certificate.guaranteed_slack > 0

    def test_fail_when_deadline_before_lower_bound(self, fig7_times):
        certificate = certify(fig7_times, 0.5, deadline=100.0)
        assert certificate.verdict is Verdict.FAIL
        assert certificate.optimistic_slack < 0

    def test_indeterminate_between_bounds(self, fig7_times):
        certificate = certify(fig7_times, 0.5, deadline=250.0)
        assert certificate.verdict is Verdict.INDETERMINATE
        assert certificate.guaranteed_slack < 0 < certificate.optimistic_slack

    def test_boundary_exactly_at_upper_bound_passes(self, fig7_times):
        upper = certify(fig7_times, 0.5, deadline=1e9).bounds.upper
        assert certify(fig7_times, 0.5, deadline=upper).verdict is Verdict.PASS

    def test_describe_mentions_verdict(self, fig7_times):
        text = certify(fig7_times, 0.5, deadline=400.0).describe()
        assert "PASS" in text
        assert "out" in text

    def test_threshold_validation(self, fig7_times):
        with pytest.raises(ValueError):
            certify(fig7_times, 1.5, deadline=100.0)

    def test_deadline_validation(self, fig7_times):
        with pytest.raises(ValueError):
            certify(fig7_times, 0.5, deadline=-1.0)


class TestCertifyTree:
    def test_certifies_marked_outputs(self, fig7):
        results = certify_tree(fig7, 0.5, deadline=400.0)
        assert set(results) == {"out"}
        assert results["out"].verdict is Verdict.PASS

    def test_certifies_requested_outputs(self, fig7):
        results = certify_tree(fig7, 0.5, deadline=400.0, outputs=["out", "b"])
        assert set(results) == {"out", "b"}

    def test_worst_output_has_smallest_slack(self, fig7):
        results = certify_tree(fig7, 0.5, deadline=600.0, outputs=["out", "b", "a"])
        worst = worst_output(results)
        assert worst.guaranteed_slack == min(c.guaranteed_slack for c in results.values())

    def test_worst_output_empty_raises(self):
        with pytest.raises(ValueError):
            worst_output({})
