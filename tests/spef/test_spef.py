"""Tests for the simplified SPEF writer and reader."""

import numpy as np
import pytest

from repro.core.exceptions import ParseError, TopologyError
from repro.core.networks import figure7_tree, rc_ladder, symmetric_fanout
from repro.core.timeconstants import characteristic_times
from repro.spef.reader import (
    iter_spef_nets,
    read_spef,
    spef_to_forest,
    spef_to_trees,
)
from repro.spef.writer import tree_to_spef, write_spef


class TestWriter:
    def test_header_fields(self):
        text = tree_to_spef(rc_ladder(2, 1.0, 1e-12), design="testchip")
        assert '*SPEF "IEEE 1481-1998"' in text
        assert '*DESIGN "testchip"' in text
        assert "*C_UNIT 1 PF" in text

    def test_single_tree_becomes_net0(self):
        text = tree_to_spef(rc_ladder(2, 1.0, 1e-12))
        assert "*D_NET net0" in text
        assert text.count("*D_NET") == 1

    def test_mapping_of_multiple_nets(self):
        trees = {"clk": rc_ladder(2, 1.0, 1e-12), "data": rc_ladder(3, 2.0, 2e-12)}
        text = tree_to_spef(trees)
        assert "*D_NET clk" in text
        assert "*D_NET data" in text

    def test_sections_present(self):
        text = tree_to_spef(rc_ladder(2, 1.0, 1e-12))
        for keyword in ("*CONN", "*CAP", "*RES", "*END"):
            assert keyword in text

    def test_total_capacitance_in_pf(self):
        tree = rc_ladder(4, 1.0, 0.5e-12)
        text = tree_to_spef(tree)
        assert "*D_NET net0 2" in text  # 4 x 0.5 pF

    def test_write_to_file(self, tmp_path):
        path = tmp_path / "design.spef"
        write_spef(figure7_tree(), path)
        assert path.read_text().startswith("*SPEF")


class TestReader:
    def test_roundtrip_preserves_elmore(self, fig7, fig7_times):
        text = tree_to_spef(fig7, segments_per_line=10)
        trees = spef_to_trees(text)
        rebuilt = trees["net0"]
        times = characteristic_times(rebuilt, "out")
        assert times.tde == pytest.approx(fig7_times.tde, rel=1e-9)
        assert times.tp == pytest.approx(fig7_times.tp, rel=1e-9)

    def test_roundtrip_multiple_nets(self):
        trees = {
            "a": rc_ladder(3, 5.0, 1e-12),
            "b": symmetric_fanout(3, 100.0, 20.0, 1e-12, 2e-12),
        }
        parsed = spef_to_trees(tree_to_spef(trees))
        assert set(parsed) == {"a", "b"}
        assert parsed["a"].total_capacitance == pytest.approx(3e-12)

    def test_outputs_recovered_from_conn_section(self, fig7):
        trees = spef_to_trees(tree_to_spef(fig7, segments_per_line=4))
        assert trees["net0"].outputs == ["out"]

    def test_units_respected(self):
        text = "\n".join(
            [
                "*C_UNIT 1 FF",
                "*R_UNIT 1 KOHM",
                "*D_NET n1 3",
                "*CONN",
                "*I n1:DRV I",
                "*P n1/out O",
                "*CAP",
                "1 n1/out 3",
                "*RES",
                "1 n1/in n1/out 2",
                "*END",
            ]
        )
        tree = spef_to_trees(text)["n1"]
        assert tree.total_capacitance == pytest.approx(3e-15)
        assert tree.total_resistance == pytest.approx(2e3)

    def test_coupling_capacitor_rejected(self):
        text = "\n".join(
            [
                "*D_NET n1 1",
                "*CONN",
                "*I n1:DRV I",
                "*CAP",
                "1 n1/a n1/b 1",
                "*RES",
                "1 n1/in n1/a 2",
                "2 n1/a n1/b 2",
                "*END",
            ]
        )
        with pytest.raises(TopologyError):
            spef_to_trees(text)

    def test_non_tree_net_rejected(self):
        text = "\n".join(
            [
                "*D_NET n1 1",
                "*CONN",
                "*I n1/in I",
                "*CAP",
                "1 n1/a 1",
                "*RES",
                "1 n1/in n1/a 2",
                "2 n1/a n1/b 2",
                "3 n1/b n1/in 2",
                "*END",
            ]
        )
        with pytest.raises(TopologyError):
            spef_to_trees(text)

    def test_read_from_file(self, tmp_path, fig7):
        path = tmp_path / "x.spef"
        write_spef(fig7, path, segments_per_line=4)
        assert "net0" in read_spef(path)


def _ladder_spef(conn_lines):
    return "\n".join(
        [
            "*C_UNIT 1 PF",
            "*R_UNIT 1 OHM",
            "*D_NET n1 3",
            "*CONN",
            *conn_lines,
            "*CAP",
            "1 n1/mid 1",
            "2 n1/out 2",
            "*RES",
            "1 n1/in n1/mid 5",
            "2 n1/mid n1/out 7",
            "*END",
        ]
    )


class TestDriverSelection:
    """Root selection must not depend on *CONN ordering (regression)."""

    DRIVER_FIRST = ["*I n1/in I", "*P n1/out O"]
    DRIVER_LAST = ["*P n1/out O", "*I n1/in I"]
    NO_I_DIRECTION = ["*P n1/out O", "*P n1/in B"]

    def _elmore(self, conn_lines):
        tree = spef_to_trees(_ladder_spef(conn_lines))["n1"]
        return characteristic_times(tree, "out").tde

    def test_driver_listed_after_loads(self):
        assert self._elmore(self.DRIVER_LAST) == pytest.approx(
            self._elmore(self.DRIVER_FIRST)
        )

    def test_driver_without_i_direction_after_loads(self):
        # No I direction anywhere: the first non-O connection is the driver,
        # even when loads are listed first.
        assert self._elmore(self.NO_I_DIRECTION) == pytest.approx(
            self._elmore(self.DRIVER_FIRST)
        )

    def test_flat_path_agrees(self):
        record = next(iter(iter_spef_nets(_ladder_spef(self.NO_I_DIRECTION))))
        assert record.node_names[0] == "in"
        flat = record.to_flat_tree()
        want = self._elmore(self.DRIVER_FIRST)
        assert flat.elmore_delays(["out"])["out"] == pytest.approx(want, rel=1e-12)


class TestFlatIngest:
    def test_stream_matches_tree_reader(self, fig7):
        text = tree_to_spef(
            {"a": rc_ladder(3, 5.0, 1e-12), "b": fig7}, segments_per_line=6
        )
        trees = spef_to_trees(text)
        for record in iter_spef_nets(text):
            flat = record.to_flat_tree()
            reference = trees[record.name]
            for output in reference.outputs:
                want = characteristic_times(reference, output)
                got = flat.characteristic_times(output)
                assert got.tde == pytest.approx(want.tde, rel=1e-12)
                assert got.tre == pytest.approx(want.tre, rel=1e-12)
                assert got.tp == pytest.approx(want.tp, rel=1e-12)

    def test_loads_become_outputs(self):
        record = next(iter(iter_spef_nets(_ladder_spef(["*I n1/in I", "*P n1/out O"]))))
        assert record.loads == ["out"]
        assert record.to_flat_tree().outputs == ["out"]

    def test_forest_batches_every_net(self):
        text = tree_to_spef(
            {"a": rc_ladder(3, 5.0, 1e-12), "b": rc_ladder(5, 2.0, 2e-12)}
        )
        forest, records = spef_to_forest(text)
        assert len(forest) == 2
        assert [record.name for record in records] == ["a", "b"]
        forest.solve()

    def test_forest_of_empty_file_rejected(self):
        with pytest.raises(ParseError):
            spef_to_forest("*C_UNIT 1 PF")

    def test_non_tree_net_rejected_in_flat_path(self):
        text = "\n".join(
            [
                "*D_NET n1 1",
                "*CONN",
                "*I n1/in I",
                "*CAP",
                "1 n1/a 1",
                "*RES",
                "1 n1/in n1/a 2",
                "2 n1/a n1/b 2",
                "3 n1/b n1/in 2",
                "*END",
            ]
        )
        with pytest.raises(TopologyError):
            list(iter_spef_nets(text))


class TestStrictStreaming:
    """Strict mode turns tolerated malformations into clean ParseErrors --
    the contract transactional store ingest relies on."""

    def _ladder(self, **overrides):
        return _ladder_spef(["*I n1/in I", "*P n1/out O"])

    def test_lenient_tolerates_missing_trailing_end(self):
        text = self._ladder().rsplit("*END", 1)[0]
        records = list(iter_spef_nets(text))
        assert [r.name for r in records] == ["n1"]

    def test_strict_rejects_missing_trailing_end(self):
        text = self._ladder().rsplit("*END", 1)[0]
        with pytest.raises(ParseError, match="not terminated"):
            list(iter_spef_nets(text, strict=True))

    def test_strict_rejects_mid_net_eof_on_line_stream(self):
        lines = self._ladder().splitlines()[:-3]  # cut inside *RES
        with pytest.raises(ParseError, match="end of input"):
            list(iter_spef_nets(iter(lines), strict=True))

    def test_strict_rejects_new_net_mid_net(self):
        text = self._ladder().replace("*END", "*D_NET n2 1\n*END", 1)
        with pytest.raises(ParseError, match="before the next"):
            list(iter_spef_nets(text, strict=True))

    def test_strict_rejects_duplicate_drivers(self):
        text = self._ladder().replace("*I n1/in I", "*I n1/in I\n*I n9/in I")
        with pytest.raises(ParseError, match="exactly one"):
            list(iter_spef_nets(text, strict=True))

    def test_strict_accepts_well_formed_stream(self):
        text = self._ladder()
        lenient = list(iter_spef_nets(text))
        strict = list(iter_spef_nets(iter(text.splitlines()), strict=True))
        assert [r.name for r in strict] == [r.name for r in lenient]
        assert np.array_equal(strict[0].parent, lenient[0].parent)

    def test_line_stream_applies_units_incrementally(self):
        text = self._ladder()
        from_string = next(iter(iter_spef_nets(text)))
        from_lines = next(iter(iter_spef_nets(iter(text.splitlines()))))
        assert np.array_equal(from_lines.resistance, from_string.resistance)
        assert np.array_equal(from_lines.capacitance, from_string.capacitance)
