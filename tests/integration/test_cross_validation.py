"""Cross-validation between the analytical engine and the simulators.

Three independent implementations exist for every network: the closed-form
characteristic times (direct and via the algebra), the modal state-space
simulator, and the trapezoidal transient engine.  These tests assert that
they agree with one another and with the bound theory on a variety of
realistic networks, which is the strongest correctness evidence the
repository has.
"""

import numpy as np
import pytest

from repro.apps.clocktree import h_tree
from repro.apps.nets import comb_bus_net, daisy_chain_net
from repro.apps.pla import pla_line_tree
from repro.core.bounds import BoundedResponse, delay_lower_bound, delay_upper_bound
from repro.core.networks import figure7_tree, rc_ladder, symmetric_fanout
from repro.core.timeconstants import characteristic_times
from repro.mos.drivers import PAPER_SUPERBUFFER
from repro.simulate.compare import bounds_violations
from repro.simulate.state_space import exact_step_response
from repro.simulate.transient import transient_step_response


def network_catalogue():
    return {
        "figure7": (figure7_tree(), "out"),
        "ladder": (rc_ladder(10, 50.0, 2e-12), "out"),
        "fanout": (symmetric_fanout(3, 300.0, 100.0, 1e-12, 2e-12), "load2"),
        "pla40": (pla_line_tree(40), "out"),
        "daisy": (daisy_chain_net([15e-15] * 3, 300e-6, driver=PAPER_SUPERBUFFER), "load2"),
        "bus": (comb_bus_net(4, 20e-15, 400e-6, 30e-6, driver=PAPER_SUPERBUFFER), "drop3"),
        "htree": (h_tree(3, leaf_capacitance_mismatch=(1.0, 1.6)), "leaf5"),
    }


@pytest.fixture(params=list(network_catalogue()))
def network(request):
    tree, output = network_catalogue()[request.param]
    return request.param, tree, output


class TestElmoreAgreement:
    def test_simulated_first_moment_matches_analytic(self, network):
        _, tree, output = network
        analytic = characteristic_times(tree, output).tde
        simulated = exact_step_response(tree, segments_per_line=30).elmore_delay(output)
        assert simulated == pytest.approx(analytic, rel=1e-4)


class TestBoundsHold:
    def test_exact_delay_inside_bounds(self, network):
        _, tree, output = network
        times = characteristic_times(tree, output)
        response = exact_step_response(tree, segments_per_line=30)
        for threshold in (0.1, 0.5, 0.9):
            exact = response.delay(output, threshold)
            lower = float(delay_lower_bound(times, threshold))
            upper = float(delay_upper_bound(times, threshold))
            assert lower <= exact * (1 + 1e-9) + 1e-30
            assert exact <= upper * (1 + 1e-9) + 1e-30

    def test_exact_waveform_inside_envelope(self, network):
        _, tree, output = network
        times = characteristic_times(tree, output)
        horizon = 10.0 * times.tp
        waveform = exact_step_response(tree, segments_per_line=30).waveform(
            output, horizon, points=200
        )
        check = bounds_violations(waveform, BoundedResponse(times))
        # Allow a sliver of tolerance for the discretisation of distributed lines.
        assert check.within(2e-3)


class TestSimulatorAgreement:
    def test_transient_matches_modal_solution(self, network):
        name, tree, output = network
        times = characteristic_times(tree, output)
        horizon = 5.0 * times.tp
        modal = exact_step_response(tree, segments_per_line=15)
        stepped = transient_step_response(tree, horizon, steps=3000, segments_per_line=15)
        grid = np.linspace(0.0, horizon, 40)
        difference = np.abs(modal.voltage(output, grid) - stepped.waveform(output)(grid))
        assert float(np.max(difference)) < 2e-3


class TestMonotonicity:
    def test_step_responses_never_decrease(self, network):
        _, tree, output = network
        times = characteristic_times(tree, output)
        waveform = exact_step_response(tree, segments_per_line=20).waveform(
            output, 8.0 * times.tp, points=300
        )
        assert waveform.is_monotonic(tolerance=1e-10)
