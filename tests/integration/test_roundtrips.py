"""Round-trip tests across the interchange formats and representations.

A tree should survive the journey through every representation the library
offers -- expression text, SPICE deck, SPEF file -- with its analysis results
intact (up to documented discretisation of distributed lines).
"""

import pytest

from repro.algebra.compiler import expression_to_tree, tree_to_expression
from repro.core.networks import figure7_tree, rc_ladder, symmetric_fanout
from repro.core.timeconstants import characteristic_times
from repro.generators.random_trees import RandomTreeConfig, random_tree
from repro.spef.reader import spef_to_trees
from repro.spef.writer import tree_to_spef
from repro.spicefmt.reader import spice_to_tree
from repro.spicefmt.writer import tree_to_spice


def catalogue():
    return {
        "figure7": (figure7_tree(), "out"),
        "ladder": (rc_ladder(6, 11.0, 3e-12), "out"),
        "fanout": (symmetric_fanout(4, 150.0, 75.0, 2e-12, 1e-12), "load3"),
        "random": (random_tree(3, RandomTreeConfig(nodes=20, distributed_fraction=0.0)), None),
    }


@pytest.fixture(params=list(catalogue()))
def tree_and_output(request):
    tree, output = catalogue()[request.param]
    if output is None:
        output = tree.outputs[0]
    return tree, output


class TestExpressionRoundTrip:
    def test_times_preserved(self, tree_and_output):
        tree, output = tree_and_output
        expression = tree_to_expression(tree, output)
        rebuilt = expression_to_tree(expression)
        original = characteristic_times(tree, output)
        recovered = characteristic_times(rebuilt, "out")
        assert recovered.tp == pytest.approx(original.tp, rel=1e-9)
        assert recovered.tde == pytest.approx(original.tde, rel=1e-9)
        assert recovered.tre == pytest.approx(original.tre, rel=1e-9)
        assert recovered.ree == pytest.approx(original.ree, rel=1e-9)

    def test_text_form_reparses(self, tree_and_output):
        tree, output = tree_and_output
        text = tree_to_expression(tree, output).to_text()
        rebuilt = expression_to_tree(text)
        assert characteristic_times(rebuilt, "out").tde == pytest.approx(
            characteristic_times(tree, output).tde, rel=1e-9
        )


class TestSpiceRoundTrip:
    def test_elmore_preserved(self, tree_and_output):
        tree, output = tree_and_output
        deck = tree_to_spice(tree, segments_per_line=12)
        rebuilt = spice_to_tree(deck)
        assert characteristic_times(rebuilt, output).tde == pytest.approx(
            characteristic_times(tree, output).tde, rel=1e-9
        )

    def test_tre_close_despite_lumping(self, tree_and_output):
        tree, output = tree_and_output
        deck = tree_to_spice(tree, segments_per_line=40)
        rebuilt = spice_to_tree(deck)
        assert characteristic_times(rebuilt, output).tre == pytest.approx(
            characteristic_times(tree, output).tre, rel=2e-3
        )


class TestSpefRoundTrip:
    def test_elmore_preserved(self, tree_and_output):
        tree, output = tree_and_output
        rebuilt = spef_to_trees(tree_to_spef(tree, segments_per_line=12))["net0"]
        assert characteristic_times(rebuilt, output).tde == pytest.approx(
            characteristic_times(tree, output).tde, rel=1e-6
        )

    def test_total_capacitance_preserved(self, tree_and_output):
        tree, _ = tree_and_output
        rebuilt = spef_to_trees(tree_to_spef(tree, segments_per_line=12))["net0"]
        assert rebuilt.total_capacitance == pytest.approx(tree.total_capacitance, rel=1e-6)


class TestChainedRoundTrip:
    def test_spice_then_spef_then_expression(self, fig7):
        """Push the Figure 7 network through every format in sequence."""
        via_spice = spice_to_tree(tree_to_spice(fig7, segments_per_line=10))
        via_spef = spef_to_trees(tree_to_spef(via_spice))["net0"]
        expression = tree_to_expression(via_spef, "out")
        final = expression_to_tree(expression)
        assert characteristic_times(final, "out").tde == pytest.approx(363.0, rel=1e-9)
