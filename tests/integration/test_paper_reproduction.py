"""End-to-end reproduction checks: the numbers the paper actually prints.

These tests are the written-down form of EXPERIMENTS.md: every quantitative
claim in the paper that this repository can check is asserted here.
"""

import pytest

from repro.algebra.compiler import tree_to_twoport
from repro.algebra.expression import figure7_expression, parse_expression
from repro.apps.pla import pla_delay_sweep
from repro.core.bounds import delay_bounds, voltage_bounds
from repro.core.networks import (
    FIGURE10_DELAY_ROWS,
    FIGURE10_VOLTAGE_ROWS,
    FIGURE7_TWOPORT,
    figure7_tree,
    single_line,
)
from repro.core.timeconstants import characteristic_times


class TestEquation18Pipeline:
    """Expression (eq. 18) -> algebra -> bounds reproduces the Fig. 10 session."""

    def test_expression_evaluates_to_published_vector(self):
        assert figure7_expression().to_twoport().as_vector() == pytest.approx(FIGURE7_TWOPORT)

    def test_tree_evaluates_to_published_vector(self):
        assert tree_to_twoport(figure7_tree(), "out").as_vector() == pytest.approx(
            FIGURE7_TWOPORT
        )

    @pytest.mark.parametrize("threshold,tmin,tmax", FIGURE10_DELAY_ROWS)
    def test_delay_rows(self, threshold, tmin, tmax):
        times = figure7_expression().to_twoport().characteristic_times()
        bounds = delay_bounds(times, threshold)
        assert bounds.lower == pytest.approx(tmin, rel=5e-4, abs=5e-3)
        assert bounds.upper == pytest.approx(tmax, rel=5e-4)

    @pytest.mark.parametrize("time,vmin,vmax", FIGURE10_VOLTAGE_ROWS)
    def test_voltage_rows(self, time, vmin, vmax):
        times = figure7_expression().to_twoport().characteristic_times()
        bounds = voltage_bounds(times, time)
        assert bounds.lower == pytest.approx(vmin, abs=5e-5)
        assert bounds.upper == pytest.approx(vmax, abs=5e-5)


class TestSectionIIIIdentities:
    def test_single_uniform_line_constants(self):
        """'For a single uniform RC line, Tp = TDe = RC/2, and TRe = RC/3.'"""
        times = characteristic_times(single_line(7.0, 3.0), "out")
        assert times.tp == pytest.approx(10.5)
        assert times.tde == pytest.approx(10.5)
        assert times.tre == pytest.approx(7.0)

    def test_eq7_ordering_on_figure7(self, fig7_times):
        assert fig7_times.tre <= fig7_times.tde <= fig7_times.tp

    def test_elmore_equals_area_above_step_response(self, fig7):
        """T_De is the area between the final value and the step response (Fig. 4)."""
        import numpy as np

        from repro.simulate.state_space import exact_step_response

        response = exact_step_response(fig7, segments_per_line=60)
        t = np.linspace(0.0, 30000.0, 300000)
        v = response.voltage("out", t)
        area = np.trapezoid(1.0 - v, t)
        assert area == pytest.approx(363.0, rel=1e-3)


class TestSectionVClaims:
    def test_pla_quadratic_dependence(self):
        rows = pla_delay_sweep([10, 20, 40, 80])
        # Doubling the minterm count multiplies the delay bound by ~4 once the
        # line resistance dominates the fixed driver resistance.
        ratio = rows[3].t_upper / rows[2].t_upper
        assert 3.0 < ratio < 4.5

    def test_pla_100_minterms_guaranteed_around_10ns(self):
        row = pla_delay_sweep([100])[0]
        assert 8.0 <= row.t_upper_ns <= 12.0

    def test_pla_delay_does_not_dominate(self):
        """The paper's design conclusion: even the guaranteed PLA line delay is
        small compared to a (period-scale) 50 ns budget."""
        row = pla_delay_sweep([100])[0]
        assert row.t_upper < 50e-9


class TestExpressionNotation:
    def test_paper_expression_text_parses_with_original_spacing(self):
        text = (
            "(URC 15 0) WC (URC 0 2) WC (WB (URC 8 0) WC URC 0 7) "
            "WC (URC 3 4) WC URC 0 9"
        )
        assert parse_expression(text).to_twoport().as_vector() == pytest.approx(
            FIGURE7_TWOPORT
        )
