"""Tests for the design database (batched stage-tree ingest)."""

import numpy as np
import pytest

from repro.core.exceptions import AnalysisError
from repro.core.networks import rc_ladder
from repro.graph import DesignDB, NetModel
from repro.spef.writer import tree_to_spef
from repro.sta.cells import standard_cell_library
from repro.sta.delaycalc import stage_characteristic_times
from repro.sta.netlist import Design
from repro.sta.parasitics import lumped, rc_tree_parasitics


@pytest.fixture
def library():
    return standard_cell_library()


@pytest.fixture
def design(library):
    design = Design("db")
    design.add_clock("clk")
    design.add_primary_input("din")
    design.add_primary_output("dout")
    design.add_instance("ff", library["DFF_X1"], D="din", CK="clk", Q="q")
    design.add_instance("u1", library["INV_X1"], A="q", Y="n1")
    design.add_instance("u2", library["NAND2_X1"], A="n1", B="q", Y="dout")
    return design


@pytest.fixture
def parasitics():
    tree = rc_ladder(4, 300.0, 15e-15)
    return {
        "n1": rc_tree_parasitics("n1", tree, {"u2/A": "out"}),
        "q": lumped("q", 8e-15),
    }


class TestCompilation:
    def test_timed_nets_exclude_clock_and_loadless(self, design, parasitics):
        db = DesignDB(design, parasitics)
        timed = set(db.timed_nets())
        assert "clk" not in timed
        assert timed == {"din", "q", "n1", "dout"}

    def test_sink_table_rows_follow_net_loads(self, design, parasitics):
        db = DesignDB(design, parasitics)
        window = db.sink_rows("q")
        pins = db.sinks.pins[window]
        assert set(pins) == {"u1/A", "u2/B"}

    def test_sink_times_match_per_net_stage_analysis(self, design, parasitics, library):
        db = DesignDB(design, parasitics)
        stage = stage_characteristic_times(
            library["INV_X1"],
            parasitics["n1"],
            {"u2/A": library["NAND2_X1"].input_capacitance},
        )
        window = db.sink_rows("n1")
        row = window.start + list(db.sinks.pins[window]).index("u2/A")
        want = stage.pin_times["u2/A"]
        assert db.sinks.tde[row] == pytest.approx(want.tde, rel=1e-12)
        assert db.sinks.tre[row] == pytest.approx(want.tre, rel=1e-12)
        assert db.sinks.tp[row] == pytest.approx(want.tp, rel=1e-12)

    def test_forest_covers_every_timed_net(self, design, parasitics):
        db = DesignDB(design, parasitics)
        assert len(db.forest) == len(db.timed_nets())

    def test_zero_capacitance_net_is_dead(self, library):
        design = Design("dead")
        design.add_primary_input("a")
        design.add_primary_output("y")
        design.add_instance("g", library["INV_X1"], A="a", Y="y")
        db = DesignDB(design)
        # Net "a" drives only the gate input cap; net "y" has a port load of
        # zero capacitance and no wire -> dead.
        window = db.sink_rows("y")
        assert not db.sinks.live[window].any()
        assert db.sinks.tde[window] == pytest.approx(0.0)


class TestIncremental:
    def test_update_net_rewrites_only_its_rows(self, design, parasitics):
        db = DesignDB(design, parasitics)
        before = db.sinks.tde.copy()
        window = db.update_net("q", lumped("q", 40e-15))
        after = db.sinks.tde
        outside = np.ones(len(after), dtype=bool)
        outside[window] = False
        np.testing.assert_array_equal(after[outside], before[outside])
        assert (after[window] > before[window]).all()

    def test_update_net_matches_fresh_database(self, design, parasitics):
        db = DesignDB(design, parasitics)
        edit = rc_tree_parasitics(
            "n1", rc_ladder(6, 700.0, 30e-15), {"u2/A": "out"}
        )
        db.update_net("n1", edit)
        fresh = DesignDB(design, {**parasitics, "n1": edit})
        for net in db.timed_nets():
            w1, w2 = db.sink_rows(net), fresh.sink_rows(net)
            np.testing.assert_allclose(
                db.sinks.tde[w1], fresh.sinks.tde[w2], rtol=1e-12
            )

    def test_update_net_rejects_wrong_net_name(self, design, parasitics):
        db = DesignDB(design, parasitics)
        with pytest.raises(AnalysisError):
            db.update_net("n1", lumped("other", 1e-15))

    def test_update_clock_net_rejected(self, design, parasitics):
        db = DesignDB(design, parasitics)
        with pytest.raises(AnalysisError):
            db.update_net("clk", lumped("clk", 1e-15))

    def test_cell_swap_touches_output_and_input_nets(self, design, parasitics, library):
        db = DesignDB(design, parasitics)
        affected = db.update_instance_cell("u1", library["INV_X4"])
        assert set(affected) == {"q", "n1"}
        assert db.instances["u1"].cell.name == "INV_X4"

    def test_cell_swap_rejects_incompatible_footprint(self, design, parasitics, library):
        db = DesignDB(design, parasitics)
        with pytest.raises(AnalysisError):
            db.update_instance_cell("u1", library["NAND2_X1"])

    def test_forest_stays_coherent_after_deferred_updates(self, design, parasitics):
        db = DesignDB(design, parasitics)
        db.update_net("q", lumped("q", 40e-15))
        forest = db.forest  # flushes the queued splice
        times = forest.solve()
        entry_window = db.sink_rows("q")
        # The forest's own solve of the spliced member agrees with the table.
        tree_index = db.timed_nets().index("q")
        member = forest.times_for(tree_index)
        assert member.total_capacitance == pytest.approx(
            float(db.sinks.total_capacitance[entry_window][0]), rel=1e-12
        )


class TestSpefIngest:
    def test_from_spef_binds_pins_and_matches_dict_path(self, design, library):
        # A resistor-only wire tree whose load leaf carries the pin's name --
        # the writer/reader round-trip preserves it exactly.
        from repro.core.tree import RCTree

        tree = RCTree("root")
        tree.add_resistor("root", "w1", 120.0)
        tree.add_capacitor("w1", 9e-15)
        tree.add_resistor("w1", "u2/A", 80.0)
        tree.add_capacitor("u2/A", 2e-15)
        tree.mark_output("u2/A")
        parasitics = {"n1": rc_tree_parasitics("n1", tree, {"u2/A": "u2/A"})}
        text = tree_to_spef({"n1": tree})

        via_spef = DesignDB.from_spef(design, text)
        via_dict = DesignDB(design, parasitics)
        w1, w2 = via_spef.sink_rows("n1"), via_dict.sink_rows("n1")
        np.testing.assert_allclose(
            via_spef.sinks.tde[w1], via_dict.sinks.tde[w2], rtol=1e-9
        )
        model = via_spef.net_model("n1")
        assert model.pin_nodes == {"u2/A": "u2/A"}

    def test_from_spef_ignores_unknown_nets(self, design):
        text = tree_to_spef({"not_in_design": rc_ladder(2, 1.0, 1e-12)})
        db = DesignDB.from_spef(design, text, default_wire_capacitance=1e-15)
        assert db.net_model("n1").base is None
