"""Scenario-batched DesignDB/TimingGraph vs per-scenario single-engine runs."""

import numpy as np
import pytest

from repro.generators import random_design
from repro.graph import DesignDB, TimingGraph
from repro.scenarios import (
    Scenario,
    ScenarioSet,
    scaled_design,
    scaled_parasitics,
)
from repro.sta.delaycalc import DelayModel
from repro.sta.parasitics import lumped

MODELS = (DelayModel.ELMORE, DelayModel.UPPER_BOUND, DelayModel.LOWER_BOUND)
PERIOD = 1.6e-9
THRESHOLD = 0.5
INPUT_DRIVE = 120.0

SCENARIOS = ScenarioSet(
    [
        Scenario("nom"),
        Scenario("slow", r_derate=1.25, c_derate=1.2, drive_derate=1.3),
        Scenario("fast", r_derate=0.8, c_derate=0.85, drive_derate=0.75),
        Scenario("tight", threshold=0.7, clock_period=2.4e-9),
        Scenario("netted", net_scale={"n4": 1.6, "n11": 0.6}),
    ]
)


def reference_graph(design, parasitics, scenario):
    """The single-scenario engine on scenario-materialized inputs."""
    return TimingGraph(
        scaled_design(design, scenario),
        {
            name: scaled_parasitics(record, scenario)
            for name, record in parasitics.items()
        },
        clock_period=scenario.clock_period or PERIOD,
        threshold=THRESHOLD if scenario.threshold is None else scenario.threshold,
        input_drive_resistance=INPUT_DRIVE * scenario.drive_derate,
    )


@pytest.fixture(scope="module")
def workload():
    design, parasitics = random_design(48, seed=21, sequential_fraction=0.2)
    graph = TimingGraph(
        design,
        dict(parasitics),
        clock_period=PERIOD,
        threshold=THRESHOLD,
        input_drive_resistance=INPUT_DRIVE,
    )
    return design, parasitics, graph


class TestDesignDBScenarios:
    def test_sink_table_matches_per_scenario_databases(self, workload):
        design, parasitics, graph = workload
        table = graph.db.solve_scenarios(SCENARIOS)
        assert table.scenario_count == len(SCENARIOS)
        assert table.nets == graph.db.sinks.nets
        for index, scenario in enumerate(SCENARIOS):
            reference = DesignDB(
                scaled_design(design, scenario),
                {
                    name: scaled_parasitics(record, scenario)
                    for name, record in parasitics.items()
                },
                input_drive_resistance=INPUT_DRIVE * scenario.drive_derate,
            ).sinks
            np.testing.assert_allclose(
                table.tde[index], reference.tde, rtol=1e-12, atol=0
            )
            np.testing.assert_allclose(
                table.tre[index], reference.tre, rtol=1e-12, atol=0
            )
            np.testing.assert_allclose(table.tp[index], reference.tp, rtol=1e-12, atol=0)

    def test_nominal_row_equals_single_scenario_table(self, workload):
        _, _, graph = workload
        table = graph.db.solve_scenarios(ScenarioSet([Scenario("nom")]))
        np.testing.assert_allclose(
            table.tde[0], graph.db.sinks.tde, rtol=1e-12, atol=0
        )
        np.testing.assert_allclose(table.tp[0], graph.db.sinks.tp, rtol=1e-12, atol=0)


class TestTimingGraphScenarios:
    def test_worst_slack_and_verdicts_match_loop(self, workload):
        design, parasitics, graph = workload
        report = graph.analyze_scenarios(SCENARIOS)
        for index, scenario in enumerate(SCENARIOS):
            reference = reference_graph(design, parasitics, scenario)
            for column, model in enumerate(MODELS):
                want = reference.worst_slack(model)
                got = report.worst_slack[index, column]
                assert abs(got - want) <= 1e-12 * max(abs(want), 1e-18), (
                    scenario.name,
                    model,
                )
            assert report.verdicts[index] == reference.certify().name

    def test_critical_paths_match_loop(self, workload):
        design, parasitics, graph = workload
        report = graph.analyze_scenarios(SCENARIOS)
        for index, scenario in enumerate(SCENARIOS):
            reference = reference_graph(design, parasitics, scenario)
            want = reference.critical_path(DelayModel.UPPER_BOUND)
            got = report.critical_paths[index]
            assert [segment.location for segment in got] == [
                segment.location for segment in want
            ]
            assert [segment.arc for segment in got] == [segment.arc for segment in want]

    def test_report_helpers(self, workload):
        _, _, graph = workload
        report = graph.analyze_scenarios(SCENARIOS)
        assert report.scenario_count == len(SCENARIOS)
        worst = report.worst_scenario(DelayModel.UPPER_BOUND)
        assert report.worst_slack_of(worst) == report.worst_slack[worst, 1]
        assert report.worst_slack_of("slow") == report.worst_slack[1, 1]
        payload = report.to_dict()
        assert len(payload["scenarios"]) == len(SCENARIOS)
        assert payload["verdict"] == report.overall_verdict
        assert payload["scenarios"][3]["clock_period"] == pytest.approx(2.4e-9)

    def test_scenario_analysis_after_incremental_edits(self, workload):
        design, parasitics, graph = workload
        graph.arrivals_matrix  # solve before editing
        edited = dict(parasitics)
        nets = graph.db.timed_nets()
        for net, capacitance in ((nets[2], 5e-14), (nets[7], 1e-15)):
            edit = lumped(net, capacitance)
            edited[net] = edit
            graph.update_net(net, edit)
        report = graph.analyze_scenarios(SCENARIOS)
        for index, scenario in enumerate(SCENARIOS):
            reference = reference_graph(design, edited, scenario)
            for column, model in enumerate(MODELS):
                want = reference.worst_slack(model)
                got = report.worst_slack[index, column]
                assert abs(got - want) <= 1e-12 * max(abs(want), 1e-18)

    def test_scenario_pin_slacks_shape_and_nominal_row(self, workload):
        _, _, graph = workload
        slacks = graph.scenario_pin_slacks(SCENARIOS, DelayModel.UPPER_BOUND)
        single = graph.pin_slacks(DelayModel.UPPER_BOUND)
        for pin, values in slacks.items():
            assert values.shape == (len(SCENARIOS),)
            want = single[pin]
            if np.isfinite(want):
                assert values[0] == pytest.approx(want, rel=1e-12)
            else:
                assert not np.isfinite(values[0])


class TestWhatIfSwaps:
    def test_whatif_matches_actual_swap(self, workload):
        from repro.opt.sizing import next_drive_strength
        from repro.sta.cells import standard_cell_library

        design, parasitics, _ = workload
        library = standard_cell_library()
        graph = TimingGraph(
            design,
            dict(parasitics),
            clock_period=PERIOD,
            threshold=THRESHOLD,
            input_drive_resistance=INPUT_DRIVE,
        )
        swaps = []
        for name, record in sorted(graph.db.instances.items()):
            stronger = next_drive_strength(record.cell, library)
            if stronger is not None:
                swaps.append((name, stronger))
            if len(swaps) == 5:
                break
        predicted = graph.whatif_resize_worst_slack(swaps, DelayModel.UPPER_BOUND)
        before = {name: graph.db.instances[name].cell for name, _ in swaps}
        for index, (name, cell) in enumerate(swaps):
            trial = TimingGraph(
                design,
                dict(parasitics),
                clock_period=PERIOD,
                threshold=THRESHOLD,
                input_drive_resistance=INPUT_DRIVE,
            )
            trial.resize_instance(name, cell)
            want = trial.worst_slack(DelayModel.UPPER_BOUND)
            assert predicted[index] == pytest.approx(want, rel=1e-9)
            trial.resize_instance(name, before[name])  # restore shared Instance

    def test_whatif_sees_clock_pin_load_on_timed_net(self):
        """A DFF clocked from a gate output (a *timed* net) presents its
        input capacitance there; the batched what-if must apply the swap's
        capacitance delta on that net exactly like resize_instance does."""
        from repro.sta.cells import standard_cell_library
        from repro.sta.netlist import Design
        from repro.sta.parasitics import lumped

        library = standard_cell_library()
        design = Design("gated_clock")
        design.add_primary_input("pi")
        design.add_primary_input("d")
        design.add_instance("u_gate", library["BUF_X1"], A="pi", Y="g")
        design.add_instance("u_ff", library["DFF_X1"], D="d", CK="g", Q="q")
        design.add_instance("u_sink", library["INV_X1"], A="q", Y="out")
        design.add_primary_output("out")
        parasitics = {
            net: lumped(net, 2e-14) for net in ("pi", "d", "g", "q", "out")
        }
        graph = TimingGraph(
            design,
            dict(parasitics),
            clock_period=PERIOD,
            input_drive_resistance=INPUT_DRIVE,
        )
        assert "g" in graph.db.timed_nets()  # the clock pin's net is timed
        swaps = [("u_ff", library["DFF_X2"])]
        predicted = graph.whatif_resize_worst_slack(swaps, DelayModel.UPPER_BOUND)
        trial = TimingGraph(
            design,
            dict(parasitics),
            clock_period=PERIOD,
            input_drive_resistance=INPUT_DRIVE,
        )
        trial.resize_instance("u_ff", library["DFF_X2"])
        want = trial.worst_slack(DelayModel.UPPER_BOUND)
        trial.resize_instance("u_ff", library["DFF_X1"])  # restore shared cell
        assert predicted[0] == pytest.approx(want, rel=1e-9)

    def test_unknown_net_scale_is_rejected(self, workload):
        _, _, graph = workload
        from repro.core.exceptions import AnalysisError

        with pytest.raises(AnalysisError, match="no_such_net"):
            graph.db.solve_scenarios(
                ScenarioSet([Scenario("typo", net_scale={"no_such_net": 2.0})])
            )

    def test_whatif_does_not_mutate(self, workload):
        from repro.opt.sizing import next_drive_strength
        from repro.sta.cells import standard_cell_library

        _, _, graph = workload
        library = standard_cell_library()
        before = graph.worst_slack(DelayModel.UPPER_BOUND)
        cells = {
            name: record.cell.name for name, record in graph.db.instances.items()
        }
        swaps = [
            (name, next_drive_strength(record.cell, library))
            for name, record in sorted(graph.db.instances.items())
            if next_drive_strength(record.cell, library) is not None
        ][:4]
        graph.whatif_resize_worst_slack(swaps)
        assert graph.worst_slack(DelayModel.UPPER_BOUND) == before
        assert {
            name: record.cell.name for name, record in graph.db.instances.items()
        } == cells
