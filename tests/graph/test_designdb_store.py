"""Store-backed DesignDB: out-of-core compilation must be observationally
identical to the in-RAM forest -- sink tables, scenario sweeps, ECO
updates and the TimingGraph on top -- while refusing the APIs that would
require a materialized forest."""

import dataclasses
import os

import numpy as np
import pytest

from repro.core.exceptions import AnalysisError
from repro.generators import random_design, random_scenarios
from repro.graph import DesignDB, TimingGraph
from repro.scenarios import Scenario, ScenarioSet
from repro.sta.cells import standard_cell_library
from repro.sta.delaycalc import DelayModel

RTOL = 1e-12


@pytest.fixture(scope="module")
def workload():
    return random_design(60, seed=21)


@pytest.fixture
def pair(workload, tmp_path):
    design, parasitics = workload
    ram = DesignDB(design, parasitics, input_drive_resistance=50.0)
    stored = DesignDB(
        design,
        parasitics,
        input_drive_resistance=50.0,
        store_dir=str(tmp_path / "store"),
    )
    return ram, stored


def _assert_sinks_match(ram_db, store_db):
    expected, actual = ram_db.sinks, store_db.sinks
    assert actual.nets == expected.nets
    assert actual.pins == expected.pins
    for name in ("tp", "tde", "tre", "total_capacitance"):
        np.testing.assert_allclose(
            np.asarray(getattr(actual, name)),
            np.asarray(getattr(expected, name)),
            rtol=RTOL,
        )


class TestCompilation:
    def test_sink_tables_match_in_ram_compile(self, pair):
        ram, stored = pair
        _assert_sinks_match(ram, stored)

    def test_store_directory_holds_manifest(self, pair):
        _, stored = pair
        assert stored.store is not None
        assert os.path.exists(os.path.join(stored.store.directory, "manifest.json"))

    def test_forest_property_is_guarded(self, pair):
        _, stored = pair
        with pytest.raises(AnalysisError, match="store"):
            stored.forest

    def test_whatif_is_guarded(self, pair, workload):
        _, stored = pair
        library = standard_cell_library()
        instance = next(
            name
            for name, i in stored.instances.items()
            if i.cell.name == "INV_X2"
        )
        with pytest.raises(AnalysisError, match="store"):
            stored.whatif_cell_elements([(instance, library["INV_X4"])])

    def test_stage_tree_recompiles_on_demand(self, pair):
        ram, stored = pair
        net = stored.timed_nets()[0]
        expected = ram.stage_tree(net)
        actual = stored.stage_tree(net)
        np.testing.assert_allclose(actual._node_c, expected._node_c, rtol=0)
        np.testing.assert_array_equal(actual._parent, expected._parent)


class TestScenarios:
    def test_sweep_matches_in_ram_solver(self, pair):
        ram, stored = pair
        scenarios = random_scenarios(5, seed=3)
        expected = ram.solve_scenarios(scenarios)
        actual = stored.solve_scenarios(scenarios)
        assert actual.scenario_names == expected.scenario_names
        for name in ("tp", "tde", "tre", "total_capacitance"):
            np.testing.assert_allclose(
                np.asarray(getattr(actual, name)),
                np.asarray(getattr(expected, name)),
                rtol=RTOL,
            )

    def test_net_scales_apply_out_of_core(self, pair):
        ram, stored = pair
        net = stored.timed_nets()[1]
        base = Scenario(name="scaled", r_derate=1.1, c_derate=0.95)
        scenarios = ScenarioSet(
            [dataclasses.replace(base, net_scale={net: 1.5})]
        )
        expected = ram.solve_scenarios(scenarios)
        actual = stored.solve_scenarios(scenarios)
        np.testing.assert_allclose(
            np.asarray(actual.tde), np.asarray(expected.tde), rtol=RTOL
        )


class TestIncremental:
    def test_update_net_matches_in_ram_update(self, pair, workload):
        ram, stored = pair
        _, parasitics = workload
        net = next(n for n in stored.timed_nets() if n in parasitics)
        scaled = dataclasses.replace(
            parasitics[net], lumped_capacitance=parasitics[net].lumped_capacitance * 2 + 1e-15
        )
        ram.update_net(net, scaled)
        stored.update_net(net, scaled)
        _assert_sinks_match(ram, stored)

    def test_cell_swap_matches_in_ram_swap(self, pair):
        ram, stored = pair
        library = standard_cell_library()
        instance = next(
            name
            for name, i in stored.instances.items()
            if i.cell.name == "INV_X2"
        )
        ram.update_instance_cell(instance, library["INV_X4"])
        stored.update_instance_cell(instance, library["INV_X4"])
        _assert_sinks_match(ram, stored)


class TestTimingGraph:
    def test_graph_runs_unchanged_on_store_backed_db(self, pair):
        ram, stored = pair
        graph_ram = TimingGraph(ram, clock_period=2e-9)
        graph_store = TimingGraph(stored, clock_period=2e-9)
        for model in (DelayModel.ELMORE, DelayModel.UPPER_BOUND):
            assert graph_store.worst_slack(model) == pytest.approx(
                graph_ram.worst_slack(model), rel=RTOL
            )

    def test_scenario_report_matches(self, pair):
        ram, stored = pair
        scenarios = random_scenarios(4, seed=8)
        report_ram = TimingGraph(ram, clock_period=2e-9).analyze_scenarios(scenarios)
        report_store = TimingGraph(stored, clock_period=2e-9).analyze_scenarios(
            scenarios
        )
        assert report_store.overall_verdict == report_ram.overall_verdict
        assert report_store.verdicts == report_ram.verdicts
        np.testing.assert_allclose(
            report_store.worst_slack, report_ram.worst_slack, rtol=RTOL
        )
