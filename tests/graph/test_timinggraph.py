"""Tests for the levelized array timing engine (vs the legacy oracle)."""

import numpy as np
import pytest

from repro.core.certify import Verdict
from repro.core.exceptions import AnalysisError
from repro.core.networks import rc_ladder
from repro.generators import random_design
from repro.graph import DesignDB, TimingGraph
from repro.sta.analysis import TimingAnalyzer
from repro.sta.cells import standard_cell_library
from repro.sta.delaycalc import DelayModel
from repro.sta.netlist import Design
from repro.sta.parasitics import lumped, rc_tree_parasitics

MODELS = (DelayModel.ELMORE, DelayModel.UPPER_BOUND, DelayModel.LOWER_BOUND)


@pytest.fixture
def library():
    return standard_cell_library()


def pipeline_design(library):
    design = Design("pipeline")
    design.add_clock("clk")
    design.add_primary_input("din")
    design.add_primary_output("dout")
    design.add_instance("ff_in", library["DFF_X1"], D="din", CK="clk", Q="q0")
    design.add_instance("u1", library["INV_X1"], A="q0", Y="n1")
    design.add_instance("u2", library["NAND2_X1"], A="n1", B="q0", Y="n2")
    design.add_instance("u3", library["BUF_X2"], A="n2", Y="dout")
    design.add_instance("ff_out", library["DFF_X1"], D="n2", CK="clk", Q="q1")
    design.add_primary_output("q1")
    return design


def pipeline_parasitics():
    return {
        "n2": rc_tree_parasitics(
            "n2", rc_ladder(5, 500.0, 20e-15), {"u3/A": "out", "ff_out/D": "s1"}
        ),
        "n1": lumped("n1", 5e-15),
    }


def assert_parity(graph, design, parasitics, clock_period, rtol=1e-12):
    for model in MODELS:
        legacy = TimingAnalyzer(design, parasitics, clock_period=clock_period).run(model)
        mine = graph.arrivals(model)
        for pin, want in legacy.arrivals.items():
            assert mine[pin] == pytest.approx(want, rel=rtol, abs=1e-30), (model, pin)
        slacks = graph.endpoint_slacks(model)
        assert set(slacks) == set(legacy.endpoint_slacks)
        for endpoint, want in legacy.endpoint_slacks.items():
            assert slacks[endpoint] == pytest.approx(want, rel=rtol, abs=1e-30)
        assert graph.worst_slack(model) == pytest.approx(legacy.worst_slack, rel=rtol)


class TestParity:
    def test_pipeline_matches_legacy_all_models(self, library):
        design = pipeline_design(library)
        parasitics = pipeline_parasitics()
        graph = TimingGraph(design, parasitics, clock_period=2e-9)
        assert_parity(graph, design, parasitics, 2e-9)

    def test_random_design_matches_legacy(self):
        design, parasitics = random_design(150, seed=4)
        graph = TimingGraph(design, parasitics, clock_period=3e-9)
        assert_parity(graph, design, parasitics, 3e-9)

    def test_verdict_matches_legacy(self, library):
        design = pipeline_design(library)
        parasitics = pipeline_parasitics()
        for period in (1e-6, 1e-12, 0.45e-9):
            graph = TimingGraph(design, parasitics, clock_period=period)
            legacy = TimingAnalyzer(design, parasitics, clock_period=period)
            assert graph.certify() is legacy.certify()

    def test_all_three_verdicts_reachable(self, library):
        design = pipeline_design(library)
        parasitics = pipeline_parasitics()
        assert TimingGraph(design, parasitics, clock_period=1e-6).certify() is Verdict.PASS
        assert TimingGraph(design, parasitics, clock_period=1e-12).certify() is Verdict.FAIL
        slow = TimingGraph(design, parasitics, clock_period=1e-6)
        upper = 1e-6 - slow.worst_slack(DelayModel.UPPER_BOUND)
        lower = 1e-6 - slow.worst_slack(DelayModel.LOWER_BOUND)
        middle = 0.5 * (upper + lower)
        assert TimingGraph(design, parasitics, clock_period=middle).certify() is Verdict.INDETERMINATE


class TestReports:
    def test_run_produces_legacy_shaped_report(self, library):
        design = pipeline_design(library)
        graph = TimingGraph(design, pipeline_parasitics(), clock_period=2e-9)
        report = graph.run(DelayModel.UPPER_BOUND)
        assert report.critical_path[0].arc == "startpoint"
        assert report.critical_path[-1].location == report.worst_endpoint
        assert "worst slack" in report.describe()

    def test_critical_path_arrivals_are_consistent(self, library):
        design = pipeline_design(library)
        graph = TimingGraph(design, pipeline_parasitics(), clock_period=2e-9)
        path = graph.critical_path(DelayModel.ELMORE)
        total = 0.0
        for segment in path:
            total += segment.incremental_delay
            assert segment.arrival == pytest.approx(total, rel=1e-12)

    def test_pin_slacks_cover_every_vertex(self, library):
        design = pipeline_design(library)
        graph = TimingGraph(design, pipeline_parasitics(), clock_period=2e-9)
        slacks = graph.pin_slacks(DelayModel.ELMORE)
        assert set(slacks) == set(graph.vertex_names)
        # Every endpoint pin's slack equals the endpoint-slack report.
        endpoint_slacks = graph.endpoint_slacks(DelayModel.ELMORE)
        for endpoint, want in endpoint_slacks.items():
            assert slacks[endpoint] <= want + 1e-24

    def test_summary_is_json_friendly(self, library):
        import json

        design = pipeline_design(library)
        graph = TimingGraph(design, pipeline_parasitics(), clock_period=2e-9)
        payload = json.loads(json.dumps(graph.summary().to_dict()))
        assert payload["verdict"] in ("PASS", "FAIL", "INDETERMINATE")
        assert set(payload["worst_slack"]) == {"elmore", "upper_bound", "lower_bound"}
        assert payload["critical_path"][0]["arc"] == "startpoint"


class TestIncremental:
    def test_update_net_matches_fresh_graph_and_legacy(self, library):
        design = pipeline_design(library)
        parasitics = pipeline_parasitics()
        graph = TimingGraph(design, parasitics, clock_period=2e-9)
        graph.arrivals_matrix
        edit = rc_tree_parasitics(
            "n2", rc_ladder(5, 1200.0, 45e-15), {"u3/A": "out", "ff_out/D": "s1"}
        )
        cone = graph.update_net("n2", edit)
        assert cone > 0
        parasitics["n2"] = edit
        assert_parity(graph, design, parasitics, 2e-9)

    def test_update_before_first_solve_is_fine(self, library):
        design = pipeline_design(library)
        parasitics = pipeline_parasitics()
        graph = TimingGraph(design, parasitics, clock_period=2e-9)
        graph.update_net("n1", lumped("n1", 50e-15))
        parasitics["n1"] = lumped("n1", 50e-15)
        assert_parity(graph, design, parasitics, 2e-9)

    def test_no_change_edit_stops_at_the_cone_seeds(self, library):
        design = pipeline_design(library)
        parasitics = pipeline_parasitics()
        graph = TimingGraph(design, parasitics, clock_period=2e-9)
        graph.arrivals_matrix
        cone = graph.update_net("n1", lumped("n1", 5e-15))  # identical value
        # Only the direct sinks are re-evaluated; nothing propagates.
        assert cone == 1

    def test_resize_instance_matches_fresh_graph(self, library):
        design = pipeline_design(library)
        parasitics = pipeline_parasitics()
        graph = TimingGraph(design, parasitics, clock_period=2e-9)
        graph.arrivals_matrix
        graph.resize_instance("u3", library["BUF_X4"])
        assert_parity(graph, design, parasitics, 2e-9)

    def test_resize_refreshes_arc_labels(self, library):
        design = pipeline_design(library)
        graph = TimingGraph(design, pipeline_parasitics(), clock_period=2e-9)
        graph.resize_instance("u2", library["NAND2_X2"])
        arcs = {
            segment.arc
            for segment in graph.critical_path(DelayModel.ELMORE)
        } | {arc for arc in graph._edge_arcs}
        assert any(arc.startswith("NAND2_X2 ") for arc in graph._edge_arcs)
        assert not any(arc.startswith("NAND2_X1 ") for arc in graph._edge_arcs)

    def test_same_instance_can_be_resized_repeatedly(self, library):
        design = pipeline_design(library)
        graph = TimingGraph(design, pipeline_parasitics(), clock_period=2e-9)
        graph.resize_instance("u1", library["INV_X2"])
        graph.resize_instance("u1", library["INV_X4"])
        assert any(arc.startswith("INV_X4 ") for arc in graph._edge_arcs)
        assert_parity(graph, design, pipeline_parasitics(), 2e-9)

    def test_required_times_refresh_after_update(self, library):
        design = pipeline_design(library)
        parasitics = pipeline_parasitics()
        graph = TimingGraph(design, parasitics, clock_period=2e-9)
        before = dict(graph.pin_slacks(DelayModel.ELMORE))
        graph.update_net("n2", lumped("n2", 200e-15))
        after = graph.pin_slacks(DelayModel.ELMORE)
        assert after["u2/Y"] < before["u2/Y"]


class TestValidation:
    def test_combinational_loop_detected(self, library):
        design = Design("loop")
        design.add_primary_output("y")
        design.add_instance("g1", library["INV_X1"], A="n2", Y="n1")
        design.add_instance("g2", library["INV_X1"], A="n1", Y="n2")
        design.add_instance("g3", library["INV_X1"], A="n2", Y="y")
        with pytest.raises(AnalysisError):
            TimingGraph(design, clock_period=1e-9)

    def test_zero_period_rejected(self, library):
        with pytest.raises(AnalysisError):
            TimingGraph(pipeline_design(library), clock_period=0.0)

    def test_parasitics_cannot_be_passed_twice(self, library):
        design = pipeline_design(library)
        db = DesignDB(design)
        with pytest.raises(AnalysisError):
            TimingGraph(db, {"n1": lumped("n1", 1e-15)})
