"""Smoke test: every documented example must actually run.

The ``examples/`` scripts are the README's advertised entry points; this
test executes each one in a subprocess (``REPRO_EXAMPLE_FAST=1`` lowers
simulation resolution so the whole suite stays in CI budget) and asserts a
clean exit with real output.  An example that rots -- renamed import,
changed API, stale keyword -- fails here instead of in a reader's shell.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_are_discovered():
    """The glob must keep finding the documented scripts."""
    names = [path.name for path in EXAMPLES]
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.stem)
def test_example_runs_clean(script):
    env = dict(os.environ)
    env["REPRO_EXAMPLE_FAST"] = "1"
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script.name} exited {result.returncode}\n"
        f"stdout:\n{result.stdout[-2000:]}\nstderr:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"
