"""Tests for the SPICE deck writer."""

import pytest

from repro.core.networks import figure7_tree, rc_ladder
from repro.spicefmt.writer import tree_to_spice, write_spice


class TestTreeToSpice:
    def test_contains_all_elements(self):
        deck = tree_to_spice(rc_ladder(3, 10.0, 2e-12))
        assert deck.count("\nR") == 3
        assert deck.count("\nC") == 3
        assert "VIN in 0 PWL" in deck
        assert deck.rstrip().endswith(".end")

    def test_distributed_lines_expanded(self):
        deck = tree_to_spice(figure7_tree(), segments_per_line=5)
        # 2 lumped resistors + 5 segments for the one distributed line.
        assert deck.count("\nR") == 7

    def test_capacitance_total_preserved(self):
        tree = figure7_tree()
        deck = tree_to_spice(tree, segments_per_line=5)
        total = 0.0
        for line in deck.splitlines():
            if line.startswith("C"):
                total += float(line.split()[-1])
        assert total == pytest.approx(tree.total_capacitance)

    def test_analysis_cards_present_by_default(self):
        deck = tree_to_spice(figure7_tree())
        assert ".tran" in deck
        assert ".print tran v(out)" in deck

    def test_analysis_cards_can_be_suppressed(self):
        deck = tree_to_spice(figure7_tree(), include_analysis=False)
        assert ".tran" not in deck

    def test_stop_time_override(self):
        deck = tree_to_spice(figure7_tree(), stop_time=1e-6)
        assert "1e-06" in deck

    def test_title_written_as_comment(self):
        deck = tree_to_spice(figure7_tree(), title="my net")
        assert deck.splitlines()[0] == "* my net"

    def test_step_parameters(self):
        deck = tree_to_spice(figure7_tree(), step_voltage=5.0, rise_time=1e-11)
        assert "PWL(0 0 1e-11 5)" in deck

    def test_write_spice_to_file(self, tmp_path):
        path = tmp_path / "net.sp"
        write_spice(figure7_tree(), path)
        assert path.read_text().startswith("*")
