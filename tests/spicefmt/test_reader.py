"""Tests for the SPICE-subset reader."""

import pytest

from repro.core.exceptions import ParseError, TopologyError
from repro.core.networks import figure7_tree
from repro.core.timeconstants import characteristic_times
from repro.spicefmt.reader import parse_spice, read_spice, spice_to_tree
from repro.spicefmt.writer import tree_to_spice

SIMPLE_DECK = """* simple tree
R1 in a 15
C1 a 0 2
R2 a b 8
C2 b 0 7
R3 a out 3
C3 out 0 13
VIN in 0 PWL(0 0 1p 1)
.tran 1 1000
.print tran v(out)
.end
"""


class TestParseSpice:
    def test_counts(self):
        deck = parse_spice(SIMPLE_DECK)
        assert len(deck.resistors) == 3
        assert len(deck.capacitors) == 3
        assert len(deck.sources) == 1
        assert deck.source_node == "in"
        assert deck.title == "simple tree"

    def test_engineering_suffixes(self):
        deck = parse_spice("R1 in a 1.5k\nC1 a 0 10pF\nVIN in 0 DC 1\n.end\n")
        assert deck.resistors[0][3] == pytest.approx(1500.0)
        assert deck.capacitors[0][3] == pytest.approx(10e-12)

    def test_continuation_lines(self):
        deck = parse_spice("R1 in a\n+ 42\nVIN in 0 1\n.end\n")
        assert deck.resistors[0][3] == pytest.approx(42.0)

    def test_comments_and_blank_lines_ignored(self):
        deck = parse_spice("* c\n\n* another\nR1 in a 1\nVIN in 0 1\n.end\n")
        assert len(deck.resistors) == 1

    def test_cards_after_end_ignored(self):
        deck = parse_spice("R1 in a 1\nVIN in 0 1\n.end\nR2 a b 5\n")
        assert len(deck.resistors) == 1

    def test_unsupported_element_rejected(self):
        with pytest.raises(ParseError):
            parse_spice("L1 in a 1n\n.end\n")

    def test_malformed_card_rejected(self):
        with pytest.raises(ParseError):
            parse_spice("R1 in a\n.end\n")

    def test_unknown_card_rejected(self):
        with pytest.raises(ParseError):
            parse_spice("Z1 in a 5\n.end\n")

    def test_orphan_continuation_rejected(self):
        with pytest.raises(ParseError):
            parse_spice("+ 42\n.end\n")


class TestSpiceToTree:
    def test_reconstructs_figure7_topology(self):
        tree = spice_to_tree(SIMPLE_DECK)
        # 13 = 9 (load) + 4 (line capacitance lumped into C3 when written by hand)
        times = characteristic_times(tree, "out")
        assert times.ree == pytest.approx(18.0)
        assert tree.root == "in"

    def test_print_cards_select_outputs(self):
        tree = spice_to_tree(SIMPLE_DECK)
        assert tree.outputs == ["out"]

    def test_leaves_become_outputs_without_print_cards(self):
        deck = SIMPLE_DECK.replace(".print tran v(out)\n", "")
        tree = spice_to_tree(deck)
        assert set(tree.outputs) == {"b", "out"}

    def test_explicit_input_node(self):
        deck = "R1 src a 10\nC1 a 0 1p\n.end\n"
        tree = spice_to_tree(deck, input_node="src")
        assert tree.root == "in"
        assert tree.total_capacitance == pytest.approx(1e-12)

    def test_missing_source_and_input_rejected(self):
        with pytest.raises(ParseError):
            spice_to_tree("R1 a b 1\nC1 b 0 1\n.end\n")

    def test_loop_detected(self):
        deck = "R1 in a 1\nR2 a b 1\nR3 b in 1\nC1 b 0 1\nVIN in 0 1\n.end\n"
        with pytest.raises(TopologyError):
            spice_to_tree(deck)

    def test_grounded_resistor_rejected(self):
        deck = "R1 in a 1\nR2 a 0 1\nVIN in 0 1\n.end\n"
        with pytest.raises(TopologyError):
            spice_to_tree(deck)

    def test_coupling_capacitor_rejected(self):
        deck = "R1 in a 1\nR2 a b 1\nC1 a b 1\nVIN in 0 1\n.end\n"
        with pytest.raises(TopologyError):
            spice_to_tree(deck)

    def test_floating_section_rejected(self):
        deck = "R1 in a 1\nR2 x y 1\nC1 a 0 1\nVIN in 0 1\n.end\n"
        with pytest.raises(TopologyError):
            spice_to_tree(deck)

    def test_capacitor_on_unconnected_node_rejected(self):
        deck = "R1 in a 1\nC1 zz 0 1\nVIN in 0 1\n.end\n"
        with pytest.raises(TopologyError):
            spice_to_tree(deck)


class TestRoundTrip:
    def test_write_then_read_preserves_analysis(self, fig7, fig7_times):
        deck = tree_to_spice(fig7, segments_per_line=10)
        rebuilt = spice_to_tree(deck)
        times = characteristic_times(rebuilt, "out")
        assert times.tp == pytest.approx(fig7_times.tp, rel=1e-9)
        assert times.tde == pytest.approx(fig7_times.tde, rel=1e-9)
        assert times.ree == pytest.approx(fig7_times.ree, rel=1e-9)
        # T_Re differs slightly because the distributed line was discretised.
        assert times.tre == pytest.approx(fig7_times.tre, rel=0.01)

    def test_read_spice_from_file(self, tmp_path, fig7):
        path = tmp_path / "fig7.sp"
        path.write_text(tree_to_spice(fig7, segments_per_line=4))
        rebuilt = read_spice(path)
        assert "out" in rebuilt
