"""Tests for the URC / WB / WC wiring functions (paper, Fig. 8, eqs. 19-28)."""

import pytest

from repro.algebra.twoport import TwoPort
from repro.algebra.wiring import capacitor, cascade_chain, from_element, resistor, urc, wb, wc
from repro.core.elements import Capacitor, Resistor, URCLine


class TestURCPrimitive:
    def test_urc_vector(self):
        # URC R C -> (C, RC/2, R, RC/2, R^2 C / 3), the paper's APL listing.
        twoport = urc(3.0, 4.0)
        assert twoport.as_vector() == pytest.approx((4.0, 6.0, 3.0, 6.0, 12.0))

    def test_resistor_degenerate(self):
        assert urc(15.0, 0.0).as_vector() == pytest.approx((0.0, 0.0, 15.0, 0.0, 0.0))
        assert resistor(15.0) == urc(15.0, 0.0)

    def test_capacitor_degenerate(self):
        assert urc(0.0, 2.0).as_vector() == pytest.approx((2.0, 0.0, 0.0, 0.0, 0.0))
        assert capacitor(2.0) == urc(0.0, 2.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            urc(-1.0, 0.0)

    def test_from_element(self):
        assert from_element(Resistor(5.0)) == resistor(5.0)
        assert from_element(Capacitor(2.0)) == capacitor(2.0)
        assert from_element(URCLine(3.0, 4.0)) == urc(3.0, 4.0)
        with pytest.raises(TypeError):
            from_element("not an element")


class TestWC:
    def test_paper_cascade_formulas(self):
        # Hand-check eqs. (19)-(23) on a concrete pair.
        a = TwoPort(ct=2.0, tp=5.0, r22=3.0, td2=4.0, tr2_r22=6.0)
        b = TwoPort(ct=7.0, tp=11.0, r22=13.0, td2=17.0, tr2_r22=19.0)
        combined = wc(a, b)
        assert combined.ct == pytest.approx(2.0 + 7.0)
        assert combined.tp == pytest.approx(5.0 + 11.0 + 3.0 * 7.0)
        assert combined.r22 == pytest.approx(3.0 + 13.0)
        assert combined.td2 == pytest.approx(4.0 + 17.0 + 3.0 * 7.0)
        assert combined.tr2_r22 == pytest.approx(6.0 + 19.0 + 2.0 * 3.0 * 17.0 + 9.0 * 7.0)

    def test_identity_element(self):
        empty = TwoPort(0.0, 0.0, 0.0, 0.0, 0.0)
        x = urc(3.0, 4.0)
        assert wc(empty, x) == x
        assert wc(x, empty) == x

    def test_associativity(self):
        a, b, c = urc(15.0, 2.0), urc(8.0, 7.0), urc(3.0, 4.0)
        left = wc(wc(a, b), c)
        right = wc(a, wc(b, c))
        assert left.as_vector() == pytest.approx(right.as_vector())

    def test_not_commutative_in_general(self):
        a, b = urc(15.0, 0.0), urc(0.0, 2.0)
        assert wc(a, b).tp != wc(b, a).tp

    def test_preserves_ordering_invariant(self):
        a, b = urc(10.0, 3.0), urc(20.0, 5.0)
        assert wc(a, b).satisfies_ordering()


class TestWB:
    def test_keeps_ct_and_tp_only(self):
        branch = wb(urc(8.0, 6.0))
        assert branch.ct == 6.0
        assert branch.tp == 24.0
        assert branch.r22 == 0.0
        assert branch.td2 == 0.0
        assert branch.tr2_r22 == 0.0

    def test_wb_is_idempotent(self):
        once = wb(urc(8.0, 6.0))
        assert wb(once) == once


class TestCascadeChain:
    def test_empty_chain_is_identity(self):
        assert cascade_chain([]).as_vector() == (0.0, 0.0, 0.0, 0.0, 0.0)

    def test_single_element(self):
        x = urc(3.0, 4.0)
        assert cascade_chain([x]) == x

    def test_matches_nested_wc(self):
        parts = [urc(15.0, 0.0), urc(0.0, 2.0), urc(3.0, 4.0), urc(0.0, 9.0)]
        nested = wc(parts[0], wc(parts[1], wc(parts[2], parts[3])))
        assert cascade_chain(parts).as_vector() == pytest.approx(nested.as_vector())


class TestFigure7ByHand:
    """Walk the paper's eq. (18) exactly as the APL session does."""

    def test_branch_subnetwork(self):
        branch = wb(wc(urc(8.0, 0.0), urc(0.0, 7.0)))
        assert branch.as_vector() == pytest.approx((7.0, 56.0, 0.0, 0.0, 0.0))

    def test_full_network_vector(self):
        branch = wb(wc(urc(8.0, 0.0), urc(0.0, 7.0)))
        net = wc(
            urc(15.0, 0.0),
            wc(urc(0.0, 2.0), wc(branch, wc(urc(3.0, 4.0), urc(0.0, 9.0)))),
        )
        assert net.as_vector() == pytest.approx((22.0, 419.0, 18.0, 363.0, 6033.0))
