"""Tests for the expression parser and AST (paper's eq. 18 notation)."""

import pytest

from repro.algebra.expression import (
    URCExpr,
    WBExpr,
    WCExpr,
    figure7_expression,
    parse_expression,
)
from repro.core.exceptions import ParseError
from repro.core.timeconstants import characteristic_times


FIG7_TEXT = "(URC 15 0) WC (URC 0 2) WC (WB (URC 8 0) WC URC 0 7) WC (URC 3 4) WC URC 0 9"


class TestParsing:
    def test_single_urc(self):
        expr = parse_expression("URC 3 4")
        assert isinstance(expr, URCExpr)
        assert expr.resistance == 3.0
        assert expr.capacitance == 4.0

    def test_parenthesised_urc(self):
        expr = parse_expression("(URC 3 4)")
        assert isinstance(expr, URCExpr)

    def test_wc_is_right_associative(self):
        expr = parse_expression("URC 1 0 WC URC 2 0 WC URC 3 0")
        assert isinstance(expr, WCExpr)
        assert isinstance(expr.left, URCExpr)
        assert isinstance(expr.right, WCExpr)

    def test_wb_grabs_rest_of_group(self):
        expr = parse_expression("WB (URC 8 0) WC URC 0 7")
        assert isinstance(expr, WBExpr)
        assert isinstance(expr.operand, WCExpr)

    def test_wb_confined_by_parentheses(self):
        expr = parse_expression("(WB URC 8 0) WC URC 0 7")
        assert isinstance(expr, WCExpr)
        assert isinstance(expr.left, WBExpr)

    def test_r_and_c_shorthands(self):
        expr = parse_expression("R 15 WC C 2")
        assert expr.to_twoport().r22 == 15.0
        assert expr.to_twoport().ct == 2.0

    def test_engineering_notation_numbers(self):
        expr = parse_expression("URC 1.5k 10p")
        assert expr.resistance == pytest.approx(1500.0)
        assert expr.capacitance == pytest.approx(10e-12)

    def test_commas_are_ignored(self):
        expr = parse_expression("URC 15, 0")
        assert expr.resistance == 15.0

    def test_case_insensitive_keywords(self):
        expr = parse_expression("urc 1 2 wc urc 3 4")
        assert isinstance(expr, WCExpr)


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "URC 1",
            "URC",
            "WC URC 1 2",
            "(URC 1 2",
            "URC 1 2)",
            "FOO 1 2",
            "URC 1 2 extra",
            "URC 1 2 WC",
            "URC one two",
            "@#!",
        ],
    )
    def test_malformed_expressions_raise(self, text):
        with pytest.raises(ParseError):
            parse_expression(text)


class TestEvaluation:
    def test_figure7_twoport(self):
        twoport = parse_expression(FIG7_TEXT).to_twoport()
        assert twoport.as_vector() == pytest.approx((22.0, 419.0, 18.0, 363.0, 6033.0))

    def test_figure7_expression_helper(self):
        assert figure7_expression().to_twoport().as_vector() == pytest.approx(
            (22.0, 419.0, 18.0, 363.0, 6033.0)
        )

    def test_to_text_roundtrip(self):
        expr = parse_expression(FIG7_TEXT)
        reparsed = parse_expression(expr.to_text())
        assert reparsed.to_twoport().as_vector() == pytest.approx(
            expr.to_twoport().as_vector()
        )


class TestToTree:
    def test_figure7_tree_elaboration(self, fig7_times):
        tree = parse_expression(FIG7_TEXT).to_tree()
        times = characteristic_times(tree, "out")
        assert times.tp == pytest.approx(fig7_times.tp)
        assert times.tde == pytest.approx(fig7_times.tde)
        assert times.tre == pytest.approx(fig7_times.tre)
        assert times.ree == pytest.approx(fig7_times.ree)

    def test_output_is_marked(self):
        tree = parse_expression("URC 5 1 WC URC 5 1").to_tree()
        assert tree.outputs == ["out"]

    def test_pure_capacitor_expression(self):
        tree = parse_expression("URC 0 3").to_tree()
        # No series resistance: port 2 is the input itself.
        assert tree.outputs == ["in"]
        assert tree.total_capacitance == pytest.approx(3.0)

    def test_custom_node_names(self):
        tree = parse_expression("URC 5 1").to_tree(root="source", output="sink")
        assert tree.root == "source"
        assert tree.outputs == ["sink"]
