"""Tests for tree <-> expression <-> two-port compilation."""

import pytest

from repro.algebra.compiler import (
    expression_to_tree,
    tree_to_expression,
    tree_to_twoport,
    twoport_times,
)
from repro.core.exceptions import UnknownNodeError
from repro.core.networks import figure7_tree, rc_ladder, symmetric_fanout
from repro.core.timeconstants import characteristic_times
from repro.generators.random_trees import RandomTreeConfig, random_tree


class TestTreeToTwoport:
    def test_figure7(self, fig7):
        twoport = tree_to_twoport(fig7, "out")
        assert twoport.as_vector() == pytest.approx((22.0, 419.0, 18.0, 363.0, 6033.0))

    def test_matches_direct_computation_on_random_trees(self, small_random_tree):
        tree = small_random_tree
        for output in tree.outputs:
            direct = characteristic_times(tree, output)
            algebra = twoport_times(tree, output)
            assert algebra.tp == pytest.approx(direct.tp, rel=1e-9, abs=1e-30)
            assert algebra.tde == pytest.approx(direct.tde, rel=1e-9, abs=1e-30)
            assert algebra.tre == pytest.approx(direct.tre, rel=1e-9, abs=1e-30)
            assert algebra.ree == pytest.approx(direct.ree, rel=1e-9, abs=1e-30)

    def test_output_on_side_branch(self, fig7):
        direct = characteristic_times(fig7, "b")
        algebra = twoport_times(fig7, "b")
        assert algebra.tde == pytest.approx(direct.tde)
        assert algebra.tre == pytest.approx(direct.tre)

    def test_deep_chain_does_not_recurse(self):
        # 3000-node chain would blow Python's default recursion limit if the
        # implementation were recursive.
        tree = rc_ladder(3000, 1.0, 1.0)
        twoport = tree_to_twoport(tree, "out")
        assert twoport.ct == pytest.approx(3000.0)

    def test_unknown_output_raises(self, fig7):
        with pytest.raises(UnknownNodeError):
            tree_to_twoport(fig7, "zz")


class TestTreeToExpression:
    def test_figure7_text_is_equivalent(self, fig7):
        expr = tree_to_expression(fig7, "out")
        assert expr.to_twoport().as_vector() == pytest.approx(
            (22.0, 419.0, 18.0, 363.0, 6033.0)
        )

    def test_expression_mentions_wb_for_branches(self, fig7):
        text = tree_to_expression(fig7, "out").to_text()
        assert "WB" in text
        assert "URC 8" in text

    def test_chain_has_no_wb(self):
        tree = rc_ladder(4, 2.0, 3.0)
        assert "WB" not in tree_to_expression(tree, "out").to_text()

    def test_random_tree_roundtrip(self, small_random_tree):
        tree = small_random_tree
        output = tree.outputs[0]
        expr = tree_to_expression(tree, output)
        rebuilt = expression_to_tree(expr)
        direct = characteristic_times(tree, output)
        rebuilt_times = characteristic_times(rebuilt, "out")
        assert rebuilt_times.tp == pytest.approx(direct.tp, rel=1e-9)
        assert rebuilt_times.tde == pytest.approx(direct.tde, rel=1e-9)
        assert rebuilt_times.tre == pytest.approx(direct.tre, rel=1e-9)


class TestExpressionToTree:
    def test_accepts_text(self):
        tree = expression_to_tree("(URC 15 0) WC URC 0 2")
        assert tree.total_capacitance == pytest.approx(2.0)

    def test_accepts_ast(self, fig7):
        expr = tree_to_expression(fig7, "out")
        tree = expression_to_tree(expr, root="source", output="sink")
        assert tree.root == "source"
        assert "sink" in tree


class TestFanoutAgreement:
    def test_every_output_of_a_fanout_net(self):
        tree = symmetric_fanout(4, 200.0, 80.0, 3e-12, 1e-12)
        for output in tree.outputs:
            assert twoport_times(tree, output).tde == pytest.approx(
                characteristic_times(tree, output).tde, rel=1e-12
            )
