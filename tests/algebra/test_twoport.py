"""Tests for the TwoPort value type."""

import pytest

from repro.algebra.twoport import TwoPort
from repro.algebra.wiring import urc
from repro.core.exceptions import ElementValueError


class TestTwoPort:
    def test_vector_roundtrip(self):
        vector = (22.0, 419.0, 18.0, 363.0, 6033.0)
        twoport = TwoPort.from_vector(vector)
        assert twoport.as_vector() == vector

    def test_tr2_derived_from_product(self):
        twoport = TwoPort.from_vector((22.0, 419.0, 18.0, 363.0, 6033.0))
        assert twoport.tr2 == pytest.approx(6033.0 / 18.0)

    def test_tr2_zero_when_r22_zero(self):
        twoport = TwoPort(ct=5.0, tp=1.0, r22=0.0, td2=0.0, tr2_r22=0.0)
        assert twoport.tr2 == 0.0

    def test_tde_alias(self):
        twoport = urc(3.0, 4.0)
        assert twoport.tde == twoport.td2

    def test_negative_values_rejected(self):
        with pytest.raises(ElementValueError):
            TwoPort(ct=-1.0, tp=0.0, r22=0.0, td2=0.0, tr2_r22=0.0)

    def test_characteristic_times_conversion(self):
        times = TwoPort.from_vector((22.0, 419.0, 18.0, 363.0, 6033.0)).characteristic_times("out")
        assert times.output == "out"
        assert times.tp == 419.0
        assert times.tde == 363.0
        assert times.tre == pytest.approx(6033.0 / 18.0)
        assert times.ree == 18.0
        assert times.total_capacitance == 22.0

    def test_fluent_composition_matches_functions(self):
        from repro.algebra.wiring import wb, wc

        a, b = urc(15.0, 0.0), urc(0.0, 2.0)
        assert a.wc(b) == wc(a, b)
        assert a.wb() == wb(a)

    def test_ordering_invariant_check(self):
        assert urc(3.0, 4.0).satisfies_ordering()
        broken = TwoPort(ct=1.0, tp=1.0, r22=1.0, td2=5.0, tr2_r22=0.1)
        assert not broken.satisfies_ordering()
