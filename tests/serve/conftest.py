"""Harness for the server tests: in-loop server runner + shared workloads.

Async server tests are the classic way to stall a suite, so every test
here runs through :func:`run_with_server`, which (a) binds an ephemeral
port so parallel CI jobs never collide, (b) wraps the whole client
scenario in ``asyncio.wait_for`` so a deadlocked coalescer fails the test
instead of hanging it, and (c) always stops the server, even on failure.
The ``hang_guard`` fixture from the top-level conftest adds a SIGALRM
backstop for pathologies ``wait_for`` cannot see (a blocked executor
thread wedging interpreter shutdown).
"""

import asyncio

import pytest

from repro.generators.random_designs import random_design
from repro.graph import DesignDB, TimingGraph
from repro.serve import ServeClient, TimingServer
from repro.serve.schema import parasitics_to_payload
from repro.sta.cells import standard_cell_library
from repro.sta.netlist import design_to_dict

#: Wall-clock budget for one test's whole client scenario (seconds).
SCENARIO_DEADLINE = 60.0


class ServeWorkload:
    """A deterministic design plus the payloads to load it over the wire."""

    def __init__(self, n_instances=120, seed=7):
        self.design, self.parasitics = random_design(n_instances, seed=seed)

    def session_payload(self, name, **overrides):
        payload = {
            "name": name,
            "netlist": design_to_dict(self.design),
            "parasitics": [
                parasitics_to_payload(p) for p in self.parasitics.values()
            ],
        }
        payload.update(overrides)
        return payload

    def direct_graph(self, **db_kwargs):
        """A fresh in-process graph over the same design -- the test oracle."""
        return TimingGraph(DesignDB(self.design, self.parasitics, **db_kwargs))

    def resizable_instances(self, count):
        """Combinational _X1 instances paired with their _X2 library variant."""
        library = standard_cell_library()
        picks = []
        for name, instance in sorted(self.design.instances.items()):
            cell = instance.cell.name
            if cell.endswith("_X1") and not instance.cell.is_sequential:
                picks.append((name, library[cell[:-3] + "_X2"]))
            if len(picks) == count:
                break
        assert len(picks) == count
        return picks


@pytest.fixture(scope="module")
def workload():
    return ServeWorkload()


@pytest.fixture
def serve_harness(hang_guard):
    """Run ``scenario(server, client)`` inside one event loop with deadlines.

    The server binds port 0 (ephemeral); the client is connected before the
    scenario runs and closed after.  Returns the scenario's return value.
    """

    def run(scenario, *, tick=0.0, timeout=SCENARIO_DEADLINE, **server_kwargs):
        async def main():
            server = TimingServer(port=0, tick=tick, **server_kwargs)
            await server.start()
            client = ServeClient("127.0.0.1", server.port)
            try:
                await client.connect()
                return await asyncio.wait_for(scenario(server, client), timeout)
            finally:
                await client.close()
                await server.stop()

        return asyncio.run(main())

    return run
