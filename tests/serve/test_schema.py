"""The wire schema: payload parsing, refusal modes, and round-tripping."""

import json

import pytest

from repro.core.timeconstants import characteristic_times
from repro.generators.random_designs import random_design
from repro.serve.schema import (
    ServeError,
    cell_from_payload,
    design_from_payload,
    model_from_payload,
    parasitics_from_payload,
    parasitics_to_payload,
    parse_json_body,
    swaps_from_payload,
)
from repro.sta.cells import standard_cell_library
from repro.sta.delaycalc import DelayModel
from repro.sta.netlist import design_to_dict


def test_parse_json_body_accepts_empty_and_objects():
    assert parse_json_body(b"") == {}
    assert parse_json_body(b'{"a": 1}') == {"a": 1}


@pytest.mark.parametrize("body", [b"not json", b"[1, 2]", b'"string"', b"\xff\xfe"])
def test_parse_json_body_refuses_non_objects(body):
    with pytest.raises(ServeError) as excinfo:
        parse_json_body(body)
    assert excinfo.value.status == 400


def test_lumped_parasitics_round_trip():
    parsed = parasitics_from_payload({"net": "n1", "lumped_capacitance": 2.5e-14})
    assert parsed.net == "n1"
    assert parsed.tree is None
    assert parsed.lumped_capacitance == 2.5e-14
    assert parasitics_to_payload(parsed) == {
        "net": "n1",
        "lumped_capacitance": 2.5e-14,
    }


def test_tree_parasitics_round_trip_is_exact():
    """Serialize -> JSON -> parse reproduces identical characteristic times."""
    _, parasitics = random_design(80, seed=3)
    trees = [p for p in parasitics.values() if p.tree is not None]
    assert trees, "the generator should emit tree-form nets"
    for original in trees:
        payload = json.loads(json.dumps(parasitics_to_payload(original)))
        rebuilt = parasitics_from_payload(payload)
        assert rebuilt.net == original.net
        assert rebuilt.pin_nodes == original.pin_nodes
        for node in original.pin_nodes.values():
            a = characteristic_times(original.tree, node)
            b = characteristic_times(rebuilt.tree, node)
            assert (a.tp, a.tde, a.tre) == (b.tp, b.tde, b.tre)


def test_parasitics_require_exactly_one_form():
    with pytest.raises(ServeError):
        parasitics_from_payload({"net": "n1"})
    with pytest.raises(ServeError):
        parasitics_from_payload(
            {"net": "n1", "lumped_capacitance": 1e-15, "tree": {"branches": []}}
        )
    with pytest.raises(ServeError):
        parasitics_from_payload({"net": "", "lumped_capacitance": 1e-15})


def test_tree_parasitics_refuse_malformed_branches():
    base = {"net": "n1", "tree": {"root": "r", "branches": [{"parent": "r"}]}}
    with pytest.raises(ServeError):
        parasitics_from_payload(base)
    cyclic = {
        "net": "n1",
        "tree": {
            "root": "r",
            "branches": [
                {"parent": "r", "node": "a", "resistance": 1.0},
                {"parent": "a", "node": "a", "resistance": 1.0},
            ],
        },
    }
    with pytest.raises(ServeError):
        parasitics_from_payload(cyclic)


def test_design_payload_round_trips_and_refuses_garbage():
    design, _ = random_design(40, seed=1)
    rebuilt = design_from_payload({"netlist": design_to_dict(design)})
    assert set(rebuilt.instances) == set(design.instances)
    with pytest.raises(ServeError):
        design_from_payload({})
    with pytest.raises(ServeError):
        design_from_payload({"netlist": {"instances": "nope"}})


def test_cell_by_name_and_inline():
    library = standard_cell_library()
    assert cell_from_payload("INV_X2", library) is library["INV_X2"]
    inline = cell_from_payload(
        {
            "name": "CUSTOM",
            "inputs": ["A"],
            "output": "Y",
            "input_capacitance": 6e-15,
            "drive_resistance": 3e3,
            "intrinsic_delay": 4e-11,
        }
    )
    assert inline.name == "CUSTOM"
    assert inline.drive_resistance == 3e3
    with pytest.raises(ServeError) as excinfo:
        cell_from_payload("NOT_A_CELL", library)
    assert excinfo.value.code == "unknown_cell"
    with pytest.raises(ServeError):
        cell_from_payload({"name": "X"})  # missing fields


def test_swaps_payload():
    library = standard_cell_library()
    swaps = swaps_from_payload(
        {"swaps": [["u1", "INV_X2"], ["u2", "BUF_X4"]]}, library
    )
    assert [(i, c.name) for i, c in swaps] == [("u1", "INV_X2"), ("u2", "BUF_X4")]
    for bad in [{}, {"swaps": []}, {"swaps": ["u1"]}, {"swaps": [["", "INV_X2"]]}]:
        with pytest.raises(ServeError):
            swaps_from_payload(bad, library)


def test_model_payload():
    assert model_from_payload({}, DelayModel.UPPER_BOUND) is DelayModel.UPPER_BOUND
    assert model_from_payload({"model": "elmore"}, DelayModel.UPPER_BOUND) is (
        DelayModel.ELMORE
    )
    with pytest.raises(ServeError) as excinfo:
        model_from_payload({"model": "median"}, DelayModel.UPPER_BOUND)
    assert excinfo.value.code == "unknown_model"


def test_serve_error_envelope():
    error = ServeError("nope", status=404, code="unknown_session")
    assert error.to_payload() == {
        "ok": False,
        "error": {"code": "unknown_session", "message": "nope"},
    }
