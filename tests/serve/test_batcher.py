"""The coalescing batcher: correctness, batching behavior, failure fan-out."""

import asyncio

import pytest

from repro.serve.batcher import WhatIfBatcher
from repro.serve.session import Session
from repro.sta.cells import standard_cell_library
from repro.sta.delaycalc import DelayModel

LIBRARY = standard_cell_library()


def make_session(workload, **kwargs):
    return Session("s", workload.design, workload.parasitics, **kwargs)


def resizable_instances(workload, count):
    return workload.resizable_instances(count)


def test_batched_scores_equal_direct_solo_calls(workload, hang_guard):
    """Every coalesced response is bitwise equal to a direct solo what-if."""
    swaps = resizable_instances(workload, 6)
    direct = workload.direct_graph()

    async def main():
        session = make_session(workload)
        batcher = WhatIfBatcher(session, tick=0.005)
        results = await asyncio.gather(
            *[
                batcher.submit([swap], DelayModel.UPPER_BOUND)
                for swap in swaps
            ]
        )
        await batcher.close()
        return results, batcher.stats

    results, stats = asyncio.run(main())
    for (scores, version), swap in zip(results, swaps):
        expected = direct.whatif_resize_worst_slack([swap])
        assert version == 0
        assert scores == [float(expected[0])]
    # All six submits landed inside one tick: they must have coalesced.
    assert stats.requests == 6
    assert stats.batches < 6
    assert stats.max_batch_requests > 1
    assert stats.solved_swaps == 6


def test_multi_swap_submissions_slice_correctly(workload, hang_guard):
    swaps = resizable_instances(workload, 6)
    direct = workload.direct_graph()

    async def main():
        session = make_session(workload)
        batcher = WhatIfBatcher(session, tick=0.005)
        first, second = await asyncio.gather(
            batcher.submit(swaps[:4], DelayModel.UPPER_BOUND),
            batcher.submit(swaps[4:], DelayModel.UPPER_BOUND),
        )
        await batcher.close()
        return first, second

    (scores_a, _), (scores_b, _) = asyncio.run(main())
    expected = direct.whatif_resize_worst_slack(swaps)
    assert scores_a == [float(x) for x in expected[:4]]
    assert scores_b == [float(x) for x in expected[4:]]


def test_mixed_models_solve_separately_but_coalesce(workload, hang_guard):
    swaps = resizable_instances(workload, 2)
    direct = workload.direct_graph()

    async def main():
        session = make_session(workload)
        batcher = WhatIfBatcher(session, tick=0.005)
        upper, elmore = await asyncio.gather(
            batcher.submit([swaps[0]], DelayModel.UPPER_BOUND),
            batcher.submit([swaps[1]], DelayModel.ELMORE),
        )
        await batcher.close()
        return upper, elmore, batcher.stats

    (upper, _), (elmore, _), stats = asyncio.run(main())
    assert upper == [
        float(direct.whatif_resize_worst_slack([swaps[0]], DelayModel.UPPER_BOUND)[0])
    ]
    assert elmore == [
        float(direct.whatif_resize_worst_slack([swaps[1]], DelayModel.ELMORE)[0])
    ]
    # One batch (one drain), two kernel groups inside it.
    assert stats.batches == 1
    assert stats.max_batch_requests == 2


def test_requests_during_solve_coalesce_into_next_round(workload, hang_guard):
    """Zero tick: arrivals during an in-flight solve form the next batch."""
    swaps = resizable_instances(workload, 8)

    async def main():
        session = make_session(workload)
        batcher = WhatIfBatcher(session, tick=0.0)
        tasks = []
        for swap in swaps:
            tasks.append(
                asyncio.ensure_future(
                    batcher.submit([swap], DelayModel.UPPER_BOUND)
                )
            )
            # Let the flush task start solving before the next arrival.
            await asyncio.sleep(0)
        results = await asyncio.gather(*tasks)
        await batcher.close()
        return results, batcher.stats

    results, stats = asyncio.run(main())
    assert len(results) == 8
    assert stats.requests == 8
    assert stats.solved_swaps == 8


def test_solve_failure_fans_out_to_waiters(workload, hang_guard):
    async def main():
        session = make_session(workload)
        batcher = WhatIfBatcher(session, tick=0.005)
        bogus = [("no_such_instance", LIBRARY["INV_X2"])]
        with pytest.raises(Exception):
            await batcher.submit(bogus, DelayModel.UPPER_BOUND)
        # The batcher must survive a failed round and keep serving.
        good = resizable_instances(workload, 1)
        scores, _ = await batcher.submit(good, DelayModel.UPPER_BOUND)
        await batcher.close()
        return scores

    scores = asyncio.run(main())
    assert len(scores) == 1


def test_closed_batcher_refuses_and_fails_pending(workload, hang_guard):
    async def main():
        session = make_session(workload)
        batcher = WhatIfBatcher(session, tick=60.0)  # never flushes on its own
        swap = resizable_instances(workload, 1)
        pending = asyncio.ensure_future(
            batcher.submit(swap, DelayModel.UPPER_BOUND)
        )
        await asyncio.sleep(0)
        await batcher.close()
        with pytest.raises(RuntimeError):
            await pending
        with pytest.raises(RuntimeError):
            await batcher.submit(swap, DelayModel.UPPER_BOUND)

    asyncio.run(main())
