"""The HTTP server: lifecycle, parity with direct calls, and error mapping."""

import asyncio

import pytest

from repro.serve import ServeClient
from repro.serve.schema import ServeError
from repro.sta.cells import standard_cell_library
from repro.sta.delaycalc import DelayModel
from repro.sta.parasitics import lumped

LIBRARY = standard_cell_library()


def test_health_and_session_lifecycle(workload, serve_harness):
    async def scenario(server, client):
        health = await client.healthz()
        assert health == {"ok": True, "sessions": 0}
        assert await client.sessions() == []

        created = await client.create_session(workload.session_payload("alpha"))
        assert created["ok"] and created["session"] == "alpha"
        assert created["store_backed"] is False
        assert await client.sessions() == ["alpha"]

        info = await client.session_info("alpha")
        assert info["version"] == 0
        assert info["batching"]["requests"] == 0

        # Duplicate names are a conflict, not a silent replacement.
        with pytest.raises(ServeError) as excinfo:
            await client.create_session(workload.session_payload("alpha"))
        assert excinfo.value.status == 409

        closed = await client.close_session("alpha")
        assert closed["closed"] is True
        assert await client.sessions() == []
        with pytest.raises(ServeError) as excinfo:
            await client.slack("alpha")
        assert excinfo.value.status == 404

    serve_harness(scenario)


def test_queries_match_direct_graph(workload, serve_harness):
    direct = workload.direct_graph()
    spec = [
        {"name": "typ"},
        {"name": "slow", "r_derate": 1.25, "c_derate": 1.1},
    ]

    async def scenario(server, client):
        await client.create_session(workload.session_payload("d"))
        slack = await client.slack("d")
        summary = await client.summary("d")
        corners = await client.corners("d", spec, paths=True)
        pins = sorted(direct.pin_slacks(DelayModel.ELMORE))[:3]
        pin_slacks = await client.slack("d", model="elmore", pins=pins)
        return slack, summary, corners, pin_slacks

    slack, summary, corners, pin_slacks = serve_harness(scenario)

    assert slack["worst_slack"] == direct.worst_slack(DelayModel.UPPER_BOUND)
    endpoint = direct.endpoint_slacks(DelayModel.UPPER_BOUND)
    assert slack["endpoint_slacks"] == pytest.approx(endpoint, abs=0.0)

    import json

    expected_summary = json.loads(
        json.dumps(direct.summary(path_model=DelayModel.UPPER_BOUND).to_dict())
    )
    assert summary["summary"] == expected_summary

    from repro.scenarios import ScenarioSet

    expected_report = json.loads(
        json.dumps(
            direct.analyze_scenarios(
                ScenarioSet.from_dict(spec), path_model=DelayModel.UPPER_BOUND
            ).to_dict()
        )
    )
    assert corners["report"] == expected_report

    direct_pins = direct.pin_slacks(DelayModel.ELMORE)
    for pin, value in pin_slacks["pin_slacks"].items():
        assert value == direct_pins[pin]


def test_eco_edits_match_direct_graph(workload, serve_harness):
    direct = workload.direct_graph()
    (instance, cell), = workload.resizable_instances(1)
    some_net = next(
        p.net for p in workload.parasitics.values() if p.tree is None
    )
    new_cap = workload.parasitics[some_net].lumped_capacitance * 3.0

    async def scenario(server, client):
        await client.create_session(workload.session_payload("d"))
        first = await client.resize_instance("d", instance, cell.name)
        second = await client.update_net(
            "d", {"net": some_net, "lumped_capacitance": new_cap}
        )
        after = await client.slack("d")
        return first, second, after

    first, second, after = serve_harness(scenario)
    assert first["version"] == 1 and second["version"] == 2
    assert after["version"] == 2

    direct.resize_instance(instance, cell)
    direct.update_net(some_net, lumped(some_net, new_cap))
    assert after["worst_slack"] == direct.worst_slack(DelayModel.UPPER_BOUND)
    assert after["endpoint_slacks"] == pytest.approx(
        direct.endpoint_slacks(DelayModel.UPPER_BOUND), abs=0.0
    )


def test_whatif_matches_direct_graph_and_coalesces(workload, serve_harness):
    direct = workload.direct_graph()
    swaps = workload.resizable_instances(6)

    async def scenario(server, client):
        await client.create_session(workload.session_payload("d"))
        # Six concurrent single-swap clients, each on its own connection.
        clients = []
        for _ in swaps:
            extra = ServeClient("127.0.0.1", server.port)
            await extra.connect()
            clients.append(extra)
        try:
            responses = await asyncio.gather(
                *[
                    extra.whatif("d", [[instance, cell.name]])
                    for extra, (instance, cell) in zip(clients, swaps)
                ]
            )
        finally:
            for extra in clients:
                await extra.close()
        info = await client.session_info("d")
        return responses, info

    responses, info = serve_harness(scenario, tick=0.01)
    expected = direct.whatif_resize_worst_slack(swaps)
    for response, value in zip(responses, expected):
        assert response["scores"] == [float(value)]
    stats = info["batching"]
    assert stats["requests"] == 6
    assert stats["batches"] < 6
    assert stats["max_batch_requests"] > 1


def test_store_backed_session_serves_queries_and_ecos(
    workload, serve_harness, tmp_path
):
    direct = workload.direct_graph()
    (instance, cell), = workload.resizable_instances(1)

    async def scenario(server, client):
        await client.create_session(
            workload.session_payload("d", store_dir=str(tmp_path / "shards"))
        )
        info = await client.session_info("d")
        before = await client.slack("d")
        await client.resize_instance("d", instance, cell.name)
        after = await client.slack("d")
        # What-if needs in-RAM planes; a store session must refuse cleanly.
        with pytest.raises(ServeError) as excinfo:
            await client.whatif("d", [[instance, cell.name]])
        return info, before, after, excinfo.value

    info, before, after, error = serve_harness(scenario)
    assert info["store_backed"] is True
    assert before["worst_slack"] == direct.worst_slack(DelayModel.UPPER_BOUND)
    direct.resize_instance(instance, cell)
    assert after["worst_slack"] == direct.worst_slack(DelayModel.UPPER_BOUND)
    assert error.status == 400


def test_error_mapping(workload, serve_harness):
    async def scenario(server, client):
        await client.create_session(workload.session_payload("d"))
        cases = []
        for method, path, payload, want in [
            ("GET", "/bogus", None, 404),
            ("PUT", "/healthz", None, 405),
            ("DELETE", "/sessions", None, 405),
            ("POST", "/sessions/none/query/slack", {}, 404),
            ("POST", "/sessions/d/query/whatif", {"swaps": []}, 400),
            ("POST", "/sessions/d/query/slack", {"model": "median"}, 400),
            ("POST", "/sessions/d/query/corners", {}, 400),
            ("POST", "/sessions/d/eco/update_net", {"net": "ghost",
                                                    "lumped_capacitance": 1e-15}, 400),
            ("POST", "/sessions", {"name": "x", "netlist": 17}, 400),
        ]:
            try:
                await client.request(method, path, payload)
                cases.append((path, None))
            except ServeError as error:
                cases.append((path, (error.status, want)))
        return cases

    cases = serve_harness(scenario)
    for path, outcome in cases:
        assert outcome is not None, f"{path} unexpectedly succeeded"
        status, want = outcome
        assert status == want, f"{path}: got {status}, wanted {want}"


def test_malformed_http_body_is_a_400(workload, serve_harness):
    async def scenario(server, client):
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        body = b"this is not json"
        writer.write(
            b"POST /sessions HTTP/1.1\r\n"
            b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
        )
        await writer.drain()
        status_line = await reader.readline()
        writer.close()
        await writer.wait_closed()
        return status_line

    status_line = serve_harness(scenario)
    assert b"400" in status_line


def test_concurrent_sessions_are_independent(workload, serve_harness):
    direct = workload.direct_graph()
    (instance, cell), = workload.resizable_instances(1)

    async def scenario(server, client):
        await client.create_session(workload.session_payload("a"))
        await client.create_session(workload.session_payload("b"))
        await client.resize_instance("a", instance, cell.name)
        slack_a = await client.slack("a")
        slack_b = await client.slack("b")
        return slack_a, slack_b

    slack_a, slack_b = serve_harness(scenario)
    untouched = direct.worst_slack(DelayModel.UPPER_BOUND)
    assert slack_b["worst_slack"] == untouched
    direct.resize_instance(instance, cell)
    assert slack_a["worst_slack"] == direct.worst_slack(DelayModel.UPPER_BOUND)
    assert slack_a["version"] == 1 and slack_b["version"] == 0
