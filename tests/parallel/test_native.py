"""The ``"native"`` backend: kernel logic, fallback contract, observability.

Three tiers, so the suite is meaningful on any machine:

* **Fallback tests** run everywhere: with ``REPRO_DISABLE_NATIVE=1`` (or no
  Numba at all) an explicit ``engine="native"`` must solve on the numpy
  kernels with exact parity and record *why* in ``last_selection()``.
* **Stub-kernel tests** reload :mod:`repro.flat.native` with a pass-through
  ``numba`` stub (``njit`` -> identity decorator, ``prange`` -> ``range``),
  so the *algorithm* of every compiled kernel -- loop order, accumulation
  order, snapshot semantics -- executes as pure Python and is pinned
  against the numpy reference even on machines without Numba.
* **Real-Numba tests** (``pytest.importorskip``) compile for real and
  re-check parity, including the sharded ``jobs>=2`` composition.
"""

import importlib
import sys
import types

import numpy as np
import pytest

from repro.flat import native as native_module
from repro.flat.contraction import jump_schedule, path_sums, subtree_sums
from repro.flat.scenarios import level_buckets, sweep_scenarios
from repro.generators import random_forest
from repro.parallel import AUTO_PROCESS_CELLS, last_selection, resolve_engine
from repro.parallel import engine as engine_module

FIELDS = ("tp", "tde", "tre", "ree", "total_capacitance")


def _planes(forest, count, seed):
    n = forest.structure.node_count
    rng = np.random.default_rng(seed)
    return tuple(
        rng.uniform(0.2, 2.0, size=(count, n)) for _ in range(3)
    )


def _assert_same(result, reference, exact=False):
    for field in FIELDS:
        got = np.asarray(getattr(result, field), dtype=float)
        want = np.asarray(getattr(reference, field), dtype=float)
        if exact:
            np.testing.assert_array_equal(got, want, err_msg=field)
        else:
            np.testing.assert_allclose(
                got, want, rtol=1e-12, atol=1e-15, err_msg=field
            )


@pytest.fixture
def stub_native(monkeypatch):
    """:mod:`repro.flat.native` reloaded under a pass-through numba stub.

    The kernels then run as plain Python functions (``prange`` is
    ``range``), so their loop/accumulation logic is testable without a
    compiler.  The module is reloaded back to its real state on teardown.
    """
    fake = types.ModuleType("numba")

    def njit(*args, **kwargs):
        def decorate(fn):
            return fn

        return decorate

    fake.njit = njit
    fake.prange = range
    fake.config = types.SimpleNamespace(THREADING_LAYER=None)
    monkeypatch.setitem(sys.modules, "numba", fake)
    monkeypatch.delenv(native_module.NATIVE_DISABLE_ENV, raising=False)
    module = importlib.reload(native_module)
    # Fresh pools, so sharded solves fork workers that inherit the stub.
    engine_module.shutdown_pools()
    try:
        yield module
    finally:
        sys.modules.pop("numba", None)
        importlib.reload(module)
        engine_module.shutdown_pools()


class TestFallback:
    """engine="native" must degrade to numpy, loudly, when kernels are out."""

    @pytest.fixture(autouse=True)
    def _disable_native(self, monkeypatch):
        monkeypatch.setenv(native_module.NATIVE_DISABLE_ENV, "1")

    def test_explicit_native_solves_on_numpy_with_reason(self):
        forest = random_forest(10, seed=11)
        er, ec, nc = _planes(forest, 4, seed=1)
        reference = forest.solve_batch(er, ec, nc, engine="numpy")
        result = forest.solve_batch(er, ec, nc, engine="native")
        _assert_same(result, reference, exact=True)
        record = last_selection()
        assert record["requested"] == "native"
        assert record["engine"] == "numpy"
        assert "disabled" in record["reason"]

    def test_fallback_warns_on_stderr_without_log_knob(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE_LOG", raising=False)
        forest = random_forest(10, seed=11)
        er, ec, nc = _planes(forest, 4, seed=1)
        forest.solve_batch(er, ec, nc, engine="native")
        err = capsys.readouterr().err
        assert "requested engine 'native' fell back to 'numpy'" in err
        # The warning is for degraded *explicit* requests only: honoured
        # requests and auto selections stay silent with the knob off.
        forest.solve_batch(er, ec, nc, engine="numpy")
        forest.solve_batch(er, ec, nc)
        assert capsys.readouterr().err == ""

    def test_fallback_warning_not_duplicated_with_log_knob(
        self, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_ENGINE_LOG", "1")
        forest = random_forest(10, seed=11)
        er, ec, nc = _planes(forest, 4, seed=1)
        forest.solve_batch(er, ec, nc, engine="native")
        err = capsys.readouterr().err
        assert err.count("repro.engine:") == 1
        assert "reason=" in err

    def test_native_with_jobs_still_degrades(self):
        forest = random_forest(10, seed=12)
        er, ec, nc = _planes(forest, 3, seed=2)
        reference = forest.solve_batch(er, ec, nc, engine="numpy")
        result = forest.solve_batch(er, ec, nc, engine="native", jobs=3)
        _assert_same(result, reference, exact=True)
        assert last_selection()["engine"] == "numpy"

    def test_status_is_dynamic(self, monkeypatch):
        assert native_module.native_status() == "disabled"
        assert not native_module.native_available()
        assert not native_module.native_ready()
        monkeypatch.delenv(native_module.NATIVE_DISABLE_ENV)
        # Back to whatever the machine really has -- never "disabled".
        assert native_module.native_status() != "disabled"

    def test_auto_selection_never_picks_unready_native(self):
        backend, jobs = resolve_engine(None, cells=AUTO_PROCESS_CELLS, jobs=1)
        assert backend.name == "numpy"

    def test_unready_kernel_calls_raise(self):
        parent = np.array([-1, 0], dtype=np.int64)
        plane = np.ones((2, 1), dtype=np.float64)
        levels = [np.array([0]), np.array([1])]
        with pytest.raises(Exception, match="native kernels unavailable"):
            native_module.sweep_scenarios_native(levels, parent, plane, plane, plane)
        with pytest.raises(Exception, match="native kernels unavailable"):
            native_module.sweep_scenarios_contract_native(parent, plane, plane, plane)


class TestStubKernels:
    """Kernel algorithm pinned against the numpy reference, sans compiler."""

    def test_probe_reports_ok(self, stub_native):
        assert stub_native.native_status() == "ok"
        assert stub_native.native_ready()

    def test_level_kernel_matches_reference_exactly(self, stub_native):
        forest = random_forest(14, seed=21)
        structure = forest.structure
        n = structure.node_count
        rng = np.random.default_rng(7)
        er, ec, nc = (
            np.ascontiguousarray(rng.uniform(0.2, 2.0, size=(n, 6)))
            for _ in range(3)
        )
        levels = level_buckets(structure.depth)
        want = sweep_scenarios(levels, structure.parent, er, ec, nc)
        got = stub_native.sweep_scenarios_native(
            levels, structure.parent, er, ec, nc
        )
        # Same expression trees, same per-level accumulation order: the
        # pure-Python replay is bitwise-identical to the numpy sweeps.
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g, w)

    def test_round_kernels_match_reference_exactly(self, stub_native):
        rng = np.random.default_rng(8)
        parent = np.arange(-1, 199, dtype=np.int64)  # a 200-node chain
        schedule = jump_schedule(parent)
        for shape in ((200,), (200, 3)):
            weights = rng.uniform(0.1, 1.0, size=shape)
            np.testing.assert_array_equal(
                stub_native.path_sums_native(weights, schedule),
                path_sums(weights, schedule),
            )
            np.testing.assert_array_equal(
                stub_native.subtree_sums_native(weights, schedule),
                subtree_sums(weights, schedule),
            )

    def test_contract_twin_parity(self, stub_native):
        parent = np.arange(-1, 499, dtype=np.int64)
        rng = np.random.default_rng(9)
        er, ec, nc = (
            rng.uniform(0.2, 2.0, size=(500, 2)) for _ in range(3)
        )
        from repro.flat.contraction import sweep_scenarios_contract

        want = sweep_scenarios_contract(parent, er, ec, nc)
        got = stub_native.sweep_scenarios_contract_native(parent, er, ec, nc)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g, w)

    def test_engine_native_end_to_end(self, stub_native):
        forest = random_forest(12, seed=22)
        er, ec, nc = _planes(forest, 5, seed=3)
        reference = forest.solve_batch(er, ec, nc, engine="numpy")
        result = forest.solve_batch(er, ec, nc, engine="native")
        _assert_same(result, reference, exact=True)
        record = last_selection()
        assert record["engine"] == "native"
        assert record["reason"] == ""

    def test_engine_native_single_scenario_and_chunk_one(self, stub_native):
        forest = random_forest(6, seed=23)
        er, ec, nc = _planes(forest, 1, seed=4)
        reference = forest.solve_batch(er, ec, nc, engine="numpy")
        result = forest.solve_batch(
            er, ec, nc, engine="native", scenario_chunk=1
        )
        _assert_same(result, reference, exact=True)

    def test_engine_native_after_replace_tree(self, stub_native):
        from repro.generators import random_flat_tree

        forest = random_forest(8, seed=24)
        forest.replace_tree(3, random_flat_tree(seed=99))
        er, ec, nc = _planes(forest, 4, seed=5)
        reference = forest.solve_batch(er, ec, nc, engine="numpy")
        result = forest.solve_batch(er, ec, nc, engine="native")
        _assert_same(result, reference, exact=True)

    def test_engine_native_sharded_jobs(self, stub_native):
        forest = random_forest(16, seed=25)
        er, ec, nc = _planes(forest, 4, seed=6)
        reference = forest.solve_batch(er, ec, nc, engine="numpy")
        result = forest.solve_batch(er, ec, nc, engine="native", jobs=2)
        _assert_same(result, reference)
        assert last_selection()["engine"] == "native"
        assert last_selection()["jobs"] == 2

    def test_deep_forest_uses_compiled_contraction(self, stub_native, monkeypatch):
        from repro.flat.forest import FlatForest
        from repro.flat import contraction

        from tests.properties.topologies import topology_flat_tree

        n = 600
        forest = FlatForest([topology_flat_tree("chain", n, seed=3)])
        er = np.ascontiguousarray(
            np.random.default_rng(10).uniform(0.2, 2.0, size=(2, n))
        )
        reference = forest.solve_batch(er, engine="numpy")
        result = forest.solve_batch(er, engine="native")
        _assert_same(result, reference)
        # The deep range really took the contraction branch.
        assert contraction.last_round_count() >= 1


_numba_real = pytest.importorskip  # alias keeps the intent greppable


class TestRealNumba:
    """Compile for real (skipped wherever Numba is not installed)."""

    @pytest.fixture(autouse=True)
    def _require_numba(self, monkeypatch):
        pytest.importorskip("numba")
        monkeypatch.delenv(native_module.NATIVE_DISABLE_ENV, raising=False)
        if not native_module.native_ready():  # pragma: no cover
            pytest.skip(f"native kernels unusable: {native_module.native_status()}")

    def test_compiled_level_kernel_parity(self):
        forest = random_forest(14, seed=31)
        structure = forest.structure
        n = structure.node_count
        rng = np.random.default_rng(17)
        er, ec, nc = (
            np.ascontiguousarray(rng.uniform(0.2, 2.0, size=(n, 6)))
            for _ in range(3)
        )
        levels = level_buckets(structure.depth)
        want = sweep_scenarios(levels, structure.parent, er, ec, nc)
        got = native_module.sweep_scenarios_native(
            levels, structure.parent, er, ec, nc
        )
        for g, w in zip(got, want):
            np.testing.assert_allclose(g, w, rtol=1e-12, atol=1e-15)

    def test_compiled_engine_matrix_cell(self):
        forest = random_forest(16, seed=32)
        er, ec, nc = _planes(forest, 8, seed=13)
        reference = forest.solve_batch(er, ec, nc, engine="numpy")
        for jobs in (None, 2):
            result = forest.solve_batch(er, ec, nc, engine="native", jobs=jobs)
            _assert_same(result, reference)
            assert last_selection()["engine"] == "native"

    def test_compiled_survives_eco_edit(self):
        from repro.generators import random_flat_tree

        forest = random_forest(10, seed=33)
        forest.replace_tree(2, random_flat_tree(23, seed=7))
        er, ec, nc = _planes(forest, 4, seed=14)
        reference = forest.solve_batch(er, ec, nc, engine="numpy")
        result = forest.solve_batch(er, ec, nc, engine="native", jobs=2)
        _assert_same(result, reference)
