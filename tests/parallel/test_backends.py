"""Backend registry and engine auto-selection."""

import pytest

from repro.core.exceptions import AnalysisError
from repro.parallel import (
    AUTO_PROCESS_CELLS,
    available_backends,
    get_backend,
    register_backend,
    resolve_engine,
)
from repro.parallel import backends as backends_module


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert "numpy" in names
        assert "process" in names
        assert "contract" in names
        assert "native" in names

    def test_get_backend_flags(self):
        assert get_backend("numpy").parallel is False
        assert get_backend("process").parallel is True

    def test_unknown_backend_lists_alternatives(self):
        with pytest.raises(AnalysisError, match="numpy"):
            get_backend("cuda")

    def test_register_and_resolve_custom_backend(self):
        def never_called(*args):  # pragma: no cover - registry plumbing only
            raise AssertionError

        try:
            backend = register_backend(
                "unit-test", never_called, parallel=False, description="x"
            )
            assert get_backend("unit-test") is backend
            resolved, jobs = resolve_engine("unit-test", cells=10)
            assert resolved is backend and jobs == 1
        finally:
            backends_module._REGISTRY.pop("unit-test", None)

    def test_reserved_names_rejected(self):
        with pytest.raises(AnalysisError):
            register_backend("auto", lambda: None, parallel=False)
        with pytest.raises(AnalysisError):
            register_backend("", lambda: None, parallel=False)


class TestResolveEngine:
    @pytest.fixture(autouse=True)
    def _without_native(self, monkeypatch):
        """Pin the compiled kernels 'not ready' so the legacy
        numpy/process/contract selection lattice is what's under test --
        deterministic whether or not Numba is installed."""
        monkeypatch.setattr(backends_module, "_native_ready", lambda: False)

    def test_small_sweep_stays_serial(self):
        backend, jobs = resolve_engine(None, cells=100, jobs=8)
        assert backend.name == "numpy" and jobs == 1

    def test_big_sweep_escalates_with_workers(self):
        backend, jobs = resolve_engine(None, cells=AUTO_PROCESS_CELLS, jobs=4)
        assert backend.name == "process" and jobs == 4

    def test_jobs_one_forces_serial_even_when_big(self):
        backend, jobs = resolve_engine(None, cells=AUTO_PROCESS_CELLS * 8, jobs=1)
        assert backend.name == "numpy" and jobs == 1

    def test_auto_alias_matches_none(self):
        for cells in (10, AUTO_PROCESS_CELLS * 2):
            assert (
                resolve_engine(None, cells=cells, jobs=3)[0].name
                == resolve_engine("auto", cells=cells, jobs=3)[0].name
            )

    def test_explicit_process_honoured_regardless_of_size(self):
        backend, jobs = resolve_engine("process", cells=1, jobs=2)
        assert backend.name == "process" and jobs == 2

    def test_process_defaults_jobs_to_cpu_count(self, monkeypatch):
        monkeypatch.setattr(backends_module, "default_job_count", lambda: 6)
        backend, jobs = resolve_engine("process", cells=1)
        assert backend.name == "process" and jobs == 6

    def test_auto_uses_default_job_count(self, monkeypatch):
        monkeypatch.setattr(backends_module, "default_job_count", lambda: 1)
        backend, _ = resolve_engine(None, cells=AUTO_PROCESS_CELLS * 8)
        assert backend.name == "numpy"
        monkeypatch.setattr(backends_module, "default_job_count", lambda: 4)
        backend, jobs = resolve_engine(None, cells=AUTO_PROCESS_CELLS * 8)
        assert backend.name == "process" and jobs == 4

    def test_daemonic_worker_degrades_to_serial(self, monkeypatch):
        monkeypatch.setattr(backends_module, "_in_daemon_worker", lambda: True)
        backend, jobs = resolve_engine("process", cells=AUTO_PROCESS_CELLS, jobs=4)
        assert backend.name == "numpy" and jobs == 1

    def test_rejects_bad_jobs(self):
        with pytest.raises(AnalysisError):
            resolve_engine(None, cells=10, jobs=0)

    def test_depth_pathology_picks_contract(self):
        backend, jobs = resolve_engine(None, cells=4000, nodes=4000, depth=3999)
        assert backend.name == "contract" and jobs == 1

    def test_contract_beats_process_escalation(self, monkeypatch):
        # A huge *and* deep sweep: the depth pathology wins the auto pick.
        monkeypatch.setattr(backends_module, "default_job_count", lambda: 4)
        backend, _ = resolve_engine(
            None, cells=AUTO_PROCESS_CELLS * 8, nodes=100_000, depth=99_999
        )
        assert backend.name == "contract"

    def test_shallow_forest_never_contracts(self):
        backend, _ = resolve_engine(None, cells=4000, nodes=4000, depth=20)
        assert backend.name == "numpy"

    def test_explicit_contract_honoured(self):
        backend, jobs = resolve_engine("contract", cells=1, nodes=4, depth=1)
        assert backend.name == "contract" and jobs == 1


class TestNativeSelection:
    """Auto-selection with the compiled kernels reported ready.

    Readiness is monkeypatched, so these run (and mean the same thing)
    with or without a Numba installation.
    """

    @pytest.fixture(autouse=True)
    def _with_native(self, monkeypatch):
        monkeypatch.setattr(backends_module, "_native_ready", lambda: True)

    def test_big_sweep_escalation_prefers_native_shards(self):
        backend, jobs = resolve_engine(None, cells=AUTO_PROCESS_CELLS, jobs=4)
        assert backend.name == "native" and jobs == 4

    def test_medium_sweep_runs_native_in_process(self):
        # Above AUTO_NATIVE_CELLS but below the process threshold: compiled
        # serial sweep, no fan-out even though workers were offered.
        backend, jobs = resolve_engine(
            None, cells=backends_module.AUTO_NATIVE_CELLS, jobs=4
        )
        assert backend.name == "native" and jobs == 1

    def test_small_sweep_skips_native(self):
        backend, jobs = resolve_engine(
            None, cells=backends_module.AUTO_NATIVE_CELLS - 1, jobs=4
        )
        assert backend.name == "numpy" and jobs == 1

    def test_depth_pathology_runs_compiled_contraction(self):
        cells = backends_module.AUTO_NATIVE_CELLS * 2
        backend, jobs = resolve_engine(None, cells=cells, nodes=cells, depth=cells - 1)
        assert backend.name == "native"

    def test_depth_pathology_below_native_floor_stays_contract(self):
        backend, jobs = resolve_engine(None, cells=4000, nodes=4000, depth=3999)
        assert backend.name == "contract" and jobs == 1

    def test_small_sweep_never_probes_readiness(self, monkeypatch):
        def boom():  # pragma: no cover - failing is the assertion
            raise AssertionError("readiness probed for a tiny sweep")

        monkeypatch.setattr(backends_module, "_native_ready", boom)
        backend, _ = resolve_engine(None, cells=100, jobs=8)
        assert backend.name == "numpy"

    def test_explicit_native_in_daemon_stays_native_serial(self, monkeypatch):
        # Unlike "process" (which must degrade to numpy -- nested pools
        # cannot exist), the compiled serial path is legal in a worker.
        monkeypatch.setattr(backends_module, "_in_daemon_worker", lambda: True)
        backend, jobs = resolve_engine("native", cells=AUTO_PROCESS_CELLS, jobs=4)
        assert backend.name == "native" and jobs == 1


class TestAffinityAwareJobs:
    """default_job_count() must follow the scheduling mask, not cpu_count.

    A cgroup-capped container advertises every host core through
    ``os.cpu_count()`` but only the granted ones through
    ``os.sched_getaffinity(0)``; auto-selection keying off the former made
    1-core containers pay process fan-out for nothing (ROADMAP item 1).
    """

    def test_default_job_count_reads_affinity_mask(self, monkeypatch):
        monkeypatch.setattr(
            backends_module.os, "sched_getaffinity", lambda pid: {0}, raising=False
        )
        monkeypatch.setattr(backends_module.os, "cpu_count", lambda: 64)
        assert backends_module.default_job_count() == 1

    def test_one_core_mask_never_auto_escalates(self, monkeypatch):
        monkeypatch.setattr(
            backends_module.os, "sched_getaffinity", lambda pid: {0}, raising=False
        )
        monkeypatch.setattr(backends_module.os, "cpu_count", lambda: 64)
        monkeypatch.setattr(backends_module, "_native_ready", lambda: False)
        backend, jobs = resolve_engine(None, cells=AUTO_PROCESS_CELLS * 8)
        assert backend.name == "numpy" and jobs == 1

    def test_four_core_mask_escalates(self, monkeypatch):
        monkeypatch.setattr(
            backends_module.os,
            "sched_getaffinity",
            lambda pid: {0, 1, 2, 3},
            raising=False,
        )
        monkeypatch.setattr(backends_module, "_native_ready", lambda: False)
        backend, jobs = resolve_engine(None, cells=AUTO_PROCESS_CELLS * 8)
        assert backend.name == "process" and jobs == 4
