"""The sharded engine agrees exactly with the serial reference path.

Shard solves never read across tree boundaries and keep the per-tree
reduction order, so the contract here is stronger than the documented 1e-12
relative tolerance: results are asserted *bitwise* equal.  ``jobs`` counts
above the machine's core count are intentional -- correctness of the
process backend does not depend on actual parallel speedup, so these tests
exercise the shared-memory path even on a single-core runner.
"""

import gc

import numpy as np
import pytest

from repro.core.exceptions import AnalysisError
from repro.flat import FlatForest, FlatTree
from repro.generators import random_design, random_flat_tree, random_forest
from repro.generators import random_scenarios
from repro.graph import TimingGraph
from repro.parallel import ForestStructure, solve_forest_batch

TIME_FIELDS = ("tp", "tde", "tre", "ree", "total_capacitance")


def assert_times_equal(got, want, fields=TIME_FIELDS):
    for name in fields:
        a, b = getattr(got, name), getattr(want, name)
        assert a.shape == b.shape, name
        assert np.array_equal(a, b), (name, float(np.max(np.abs(a - b))))


@pytest.fixture(scope="module")
def forest():
    return random_forest(60, seed=21)


@pytest.fixture(scope="module")
def planes(forest):
    rng = np.random.default_rng(7)
    s = 11
    return {
        "edge_r": forest._edge_r * rng.uniform(0.5, 1.5, size=(s, forest.node_count)),
        "edge_c": rng.uniform(0.8, 1.2, size=s),
        "node_c": None,
        "count": s,
    }


class TestEngineParity:
    def test_process_matches_numpy_bitwise(self, forest, planes):
        serial = forest.solve_batch(**planes)
        sharded = forest.solve_batch(**planes, engine="process", jobs=3)
        assert_times_equal(sharded, serial)

    def test_chunked_serial_matches_unchunked(self, forest, planes):
        serial = forest.solve_batch(**planes)
        chunked = forest.solve_batch(**planes, engine="numpy", scenario_chunk=4)
        assert_times_equal(chunked, serial)

    def test_chunked_process_matches(self, forest, planes):
        serial = forest.solve_batch(**planes)
        chunked = forest.solve_batch(
            **planes, engine="process", jobs=3, scenario_chunk=3
        )
        assert_times_equal(chunked, serial)

    def test_single_scenario_and_base_planes(self, forest):
        serial = forest.solve_batch(count=1)
        sharded = forest.solve_batch(count=1, engine="process", jobs=2)
        assert_times_equal(sharded, serial)

    def test_node_major_transposed_views_accepted(self, forest):
        s = 5
        rng = np.random.default_rng(3)
        node_major = np.ascontiguousarray(
            (forest._edge_r[:, None] * rng.uniform(0.5, 2.0, size=(forest.node_count, s)))
        )
        serial = forest.solve_batch(edge_r=node_major.T, count=s)
        sharded = forest.solve_batch(edge_r=node_major.T, count=s, engine="process", jobs=2)
        reference = forest.solve_batch(edge_r=node_major.T.copy(), count=s)
        assert_times_equal(serial, reference)
        assert_times_equal(sharded, reference)

    def test_nonzero_root_plane_is_shard_invariant(self, forest):
        # A plane may (degenerately) put elements on tree roots; the root's
        # "parent" term is defined as zero, so results must not depend on
        # which node happens to sit at a shard's local index 0.
        s = 4
        rng = np.random.default_rng(11)
        er = forest._edge_r * rng.uniform(0.5, 1.5, size=(s, forest.node_count))
        ec = forest._edge_c * rng.uniform(0.5, 1.5, size=(s, forest.node_count))
        roots = np.asarray(forest._offsets[:-1], dtype=np.int64)
        er[:, roots] = rng.uniform(10.0, 500.0, size=(s, len(roots)))
        ec[:, roots] = rng.uniform(1e-15, 1e-13, size=(s, len(roots)))
        serial = forest.solve_batch(edge_r=er, edge_c=ec, count=s)
        sharded = forest.solve_batch(
            edge_r=er, edge_c=ec, count=s, engine="process", jobs=3
        )
        assert_times_equal(sharded, serial)

    def test_many_jobs_more_than_trees(self):
        small = random_forest(3, seed=5)
        serial = small.solve_batch(count=4)
        sharded = small.solve_batch(count=4, engine="process", jobs=16)
        assert_times_equal(sharded, serial)

    def test_single_tree_forest_falls_back_to_serial(self):
        lone = FlatForest([random_flat_tree(seed=1)])
        serial = lone.solve_batch(count=3)
        sharded = lone.solve_batch(count=3, engine="process", jobs=4)
        assert_times_equal(sharded, serial)

    def test_results_outlive_the_record(self, forest, planes):
        tde = forest.solve_batch(**planes, engine="process", jobs=3).tde
        gc.collect()  # collect the record (and its shared-block holder)
        want = forest.solve_batch(**planes).tde
        assert np.array_equal(np.asarray(tde), want)


class TestIncrementalInvalidation:
    def test_replace_tree_reflected_by_every_engine(self):
        forest = random_forest(20, seed=9)
        forest.solve_batch(count=4, engine="process", jobs=3)
        forest.replace_tree(7, random_flat_tree(seed=123))
        serial = forest.solve_batch(count=4)
        sharded = forest.solve_batch(count=4, engine="process", jobs=3)
        assert serial.tde.shape[1] == forest.node_count
        assert_times_equal(sharded, serial)

    def test_structure_tracks_current_layout(self):
        forest = random_forest(10, seed=2)
        before = forest.structure.node_count
        replacement = random_flat_tree(seed=77)
        delta = len(replacement) - len(forest.trees[0])
        forest.replace_tree(0, replacement)
        structure = forest.structure
        assert structure.node_count == forest.node_count == before + delta
        assert structure.tree_count == len(forest)
        assert structure.parent is forest._parent


class TestValidation:
    def test_bad_scenario_vector_length(self, forest):
        with pytest.raises(AnalysisError, match="entries"):
            forest.solve_batch(edge_c=np.ones(3), count=5)

    def test_bad_plane_shape(self, forest):
        with pytest.raises(AnalysisError, match="shape"):
            forest.solve_batch(edge_r=np.ones((2, 3)), count=2)

    def test_unknown_engine(self, forest):
        with pytest.raises(AnalysisError, match="unknown engine"):
            forest.solve_batch(count=2, engine="quantum")

    def test_bad_count(self, forest):
        with pytest.raises(AnalysisError):
            solve_forest_batch(
                forest.structure,
                (forest._edge_r, forest._edge_c, forest._node_c),
                (None, None, None),
                0,
            )


class TestDesignLevel:
    @pytest.fixture(scope="class")
    def workload(self):
        design, parasitics = random_design(80, seed=13)
        scenarios = random_scenarios(10, seed=4)
        graph = TimingGraph(
            design,
            dict(parasitics),
            clock_period=1.5e-9,
            input_drive_resistance=110.0,
        )
        return graph, scenarios

    def test_solve_scenarios_parity(self, workload):
        graph, scenarios = workload
        serial = graph.db.solve_scenarios(scenarios, engine="numpy")
        sharded = graph.db.solve_scenarios(scenarios, engine="process", jobs=3)
        assert_times_equal(sharded, serial, fields=("tp", "tde", "tre", "total_capacitance"))
        assert sharded.scenario_names == serial.scenario_names

    def test_analyze_scenarios_parity(self, workload):
        graph, scenarios = workload
        serial = graph.analyze_scenarios(scenarios)
        sharded = graph.analyze_scenarios(scenarios, engine="process", jobs=3)
        assert np.array_equal(serial.worst_slack, sharded.worst_slack)
        assert serial.verdicts == sharded.verdicts
        assert serial.worst_endpoint == sharded.worst_endpoint

    def test_corner_sweep_parity(self, workload):
        from repro.apps.corners import corner_sweep

        graph, scenarios = workload
        assert corner_sweep(graph, scenarios) == corner_sweep(
            graph, scenarios, engine="process", jobs=2
        )

    def test_scenario_pin_slacks_parity(self, workload):
        graph, scenarios = workload
        serial = graph.scenario_pin_slacks(scenarios)
        sharded = graph.scenario_pin_slacks(scenarios, engine="process", jobs=2)
        assert serial.keys() == sharded.keys()
        for pin in serial:
            assert np.array_equal(serial[pin], sharded[pin]), pin

    def test_cli_jobs_flag(self, tmp_path):
        import json

        from repro.cli import main
        from repro.scenarios import ScenarioSet
        from repro.sta.netlist import design_to_dict

        design, _ = random_design(20, seed=3)
        netlist = tmp_path / "design.json"
        netlist.write_text(json.dumps(design_to_dict(design)))
        corners = tmp_path / "corners.json"
        corners.write_text(json.dumps(ScenarioSet.corners().to_dict()))
        out_parallel = tmp_path / "parallel.json"
        out_serial = tmp_path / "serial.json"
        argv = [
            "timing", "--netlist", str(netlist), "--period", "1",
            "--corners", str(corners),
        ]
        assert main(argv + ["--jobs", "2", "--output", str(out_parallel)]) == 0
        assert main(argv + ["--jobs", "1", "--output", str(out_serial)]) == 0
        assert json.loads(out_parallel.read_text()) == json.loads(
            out_serial.read_text()
        )
        # --jobs without --corners is a usage error, not a silent serial run.
        with pytest.raises(SystemExit) as excinfo:
            main([
                "timing", "--netlist", str(netlist), "--period", "1",
                "--jobs", "2",
            ])
        assert excinfo.value.code == 2
