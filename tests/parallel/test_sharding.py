"""Shard and chunk planners: coverage, contiguity, balance, edge cases."""

import numpy as np
import pytest

from repro.core.exceptions import AnalysisError
from repro.parallel import (
    DEFAULT_CHUNK_CELLS,
    plan_shards,
    scenario_chunks,
    shard_node_ranges,
)
from repro.parallel.sharding import (
    CHUNK_BYTES_ENV,
    MAX_CHUNK_CELLS,
    default_chunk_cells,
)


def _offsets(sizes):
    return np.concatenate([[0], np.cumsum(sizes)])


class TestPlanShards:
    def test_covers_every_tree_exactly_once(self):
        offsets = _offsets([5, 1, 9, 2, 2, 7, 3, 1])
        shards = plan_shards(offsets, 3)
        covered = [t for lo, hi in shards for t in range(lo, hi)]
        assert covered == list(range(8))

    def test_shards_are_contiguous_and_ordered(self):
        offsets = _offsets([4] * 10)
        shards = plan_shards(offsets, 4)
        for (a_lo, a_hi), (b_lo, b_hi) in zip(shards, shards[1:]):
            assert a_hi == b_lo
            assert a_lo < a_hi
        assert shards[0][0] == 0 and shards[-1][1] == 10

    def test_balances_by_node_count_not_tree_count(self):
        # One huge tree plus many tiny ones: the huge tree gets its own shard.
        offsets = _offsets([100] + [1] * 100)
        shards = plan_shards(offsets, 2)
        assert shards[0] == (0, 1)
        assert shards[1] == (1, 101)

    def test_uniform_sizes_split_evenly(self):
        offsets = _offsets([3] * 12)
        shards = plan_shards(offsets, 4)
        assert [hi - lo for lo, hi in shards] == [3, 3, 3, 3]

    def test_jobs_clamped_to_tree_count(self):
        offsets = _offsets([2, 2])
        shards = plan_shards(offsets, 8)
        assert len(shards) == 2
        assert all(hi - lo == 1 for lo, hi in shards)

    def test_single_job_single_shard(self):
        offsets = _offsets([1, 2, 3])
        assert plan_shards(offsets, 1) == [(0, 3)]

    def test_every_shard_nonempty_even_when_skewed(self):
        offsets = _offsets([1, 1, 1, 97])
        shards = plan_shards(offsets, 4)
        assert len(shards) == 4
        assert all(hi > lo for lo, hi in shards)

    def test_rejects_empty_forest_and_bad_jobs(self):
        with pytest.raises(AnalysisError):
            plan_shards(np.asarray([0]), 2)
        with pytest.raises(AnalysisError):
            plan_shards(_offsets([1, 2]), 0)

    def test_node_ranges_follow_offsets(self):
        offsets = _offsets([5, 1, 9, 2])
        shards = plan_shards(offsets, 2)
        ranges = shard_node_ranges(offsets, shards)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 17
        for (lo, hi), (t_lo, t_hi) in zip(ranges, shards):
            assert lo == offsets[t_lo] and hi == offsets[t_hi]


class TestScenarioChunks:
    def test_single_chunk_when_small(self):
        assert scenario_chunks(16, 100) == [(0, 16)]

    def test_explicit_chunk_width_is_balanced(self):
        chunks = scenario_chunks(10, 5, chunk=4)
        assert chunks == [(0, 4), (4, 8), (8, 10)]
        assert chunks[-1][1] == 10

    def test_default_width_bounds_cells(self):
        budget = default_chunk_cells()
        node_count = budget // 4
        chunks = scenario_chunks(64, node_count)
        for lo, hi in chunks:
            assert (hi - lo) * node_count <= budget
        assert chunks[0][0] == 0 and chunks[-1][1] == 64

    def test_chunks_partition_the_axis(self):
        chunks = scenario_chunks(23, 7, chunk=5)
        flat = [s for lo, hi in chunks for s in range(lo, hi)]
        assert flat == list(range(23))

    def test_rejects_bad_inputs(self):
        with pytest.raises(AnalysisError):
            scenario_chunks(0, 5)
        with pytest.raises(AnalysisError):
            scenario_chunks(4, 5, chunk=0)


class TestDefaultChunkCells:
    def test_env_override_is_exact_bytes(self, monkeypatch):
        monkeypatch.setenv(CHUNK_BYTES_ENV, str(256 * 1024))
        assert default_chunk_cells() == 256 * 1024 // 8
        monkeypatch.setenv(CHUNK_BYTES_ENV, "3")  # below one cell
        assert default_chunk_cells() == 1

    def test_env_override_drives_chunk_width(self, monkeypatch):
        monkeypatch.setenv(CHUNK_BYTES_ENV, str(8 * 40))  # 40-cell budget
        chunks = scenario_chunks(16, 10)  # width 40 // 10 == 4
        assert chunks == [(0, 4), (4, 8), (8, 12), (12, 16)]

    def test_derived_default_is_clamped(self, monkeypatch):
        monkeypatch.delenv(CHUNK_BYTES_ENV, raising=False)
        cells = default_chunk_cells()
        assert DEFAULT_CHUNK_CELLS <= cells <= MAX_CHUNK_CELLS

    def test_rejects_malformed_env(self, monkeypatch):
        monkeypatch.setenv(CHUNK_BYTES_ENV, "lots")
        with pytest.raises(AnalysisError):
            default_chunk_cells()
        monkeypatch.setenv(CHUNK_BYTES_ENV, "0")
        with pytest.raises(AnalysisError):
            default_chunk_cells()
