"""Tests for the moment-based delay metrics."""

import math

import pytest

from repro.core.networks import figure7_tree, rc_ladder
from repro.core.tree import RCTree
from repro.moments.metrics import (
    delay_d2m,
    delay_elmore_metric,
    delay_single_pole,
    delay_two_pole,
    estimate_all,
    fit_two_pole,
    two_pole_step_response,
)
from repro.moments.moments import transfer_moments
from repro.simulate.state_space import exact_step_response


def single_rc_moments(rc=6.0, order=3):
    return [(-rc) ** k for k in range(order + 1)]


class TestSingleRCExactness:
    """For one pole every metric collapses to the exact RC ln(1/(1-v))."""

    def test_single_pole(self):
        assert delay_single_pole(single_rc_moments(), 0.5) == pytest.approx(6.0 * math.log(2.0))

    def test_d2m(self):
        assert delay_d2m(single_rc_moments(), 0.5) == pytest.approx(6.0 * math.log(2.0))

    def test_two_pole(self):
        assert delay_two_pole(single_rc_moments(), 0.5) == pytest.approx(
            6.0 * math.log(2.0), rel=1e-9
        )

    def test_elmore_metric_ignores_threshold(self):
        assert delay_elmore_metric(single_rc_moments(), 0.3) == pytest.approx(6.0)
        assert delay_elmore_metric(single_rc_moments(), 0.9) == pytest.approx(6.0)

    def test_two_pole_fit_degenerates(self):
        fit = fit_two_pole(single_rc_moments())
        assert fit.degenerate
        assert fit.poles[0] == pytest.approx(-1.0 / 6.0)


class TestAccuracyAgainstExactSimulation:
    @pytest.fixture(scope="class")
    def ladder_case(self):
        tree = rc_ladder(10, 10.0, 1.0)
        exact = exact_step_response(tree).delay("out", 0.5)
        return tree, exact

    def test_metrics_beat_raw_elmore_at_half_vdd(self, ladder_case):
        tree, exact = ladder_case
        estimates = estimate_all(tree, "out", 0.5, exact=exact)
        errors = estimates.errors_vs_exact()
        assert abs(errors["single_pole"]) < abs(errors["elmore"])
        assert abs(errors["d2m"]) < abs(errors["elmore"])
        assert abs(errors["two_pole"]) < abs(errors["elmore"])

    def test_d2m_within_a_few_percent(self, ladder_case):
        tree, exact = ladder_case
        estimates = estimate_all(tree, "out", 0.5, exact=exact)
        assert abs(estimates.errors_vs_exact()["d2m"]) < 0.05

    def test_estimates_inside_or_near_pr_bounds(self, ladder_case):
        tree, exact = ladder_case
        estimates = estimate_all(tree, "out", 0.5, exact=exact)
        assert estimates.bound_lower <= exact <= estimates.bound_upper

    def test_figure7_estimates(self, fig7):
        exact = exact_step_response(fig7, segments_per_line=50).delay("out", 0.5)
        estimates = estimate_all(fig7, "out", 0.5, segments_per_line=50, exact=exact)
        assert abs(estimates.errors_vs_exact()["two_pole"]) < 0.05
        assert estimates.bound_lower <= estimates.two_pole <= estimates.bound_upper


class TestTwoPoleFit:
    def test_non_degenerate_for_multi_pole_network(self, fig7):
        fit = two_pole_step_response(fig7, "out", segments_per_line=40)
        assert not fit.degenerate
        assert all(p < 0 for p in fit.poles)

    def test_step_response_starts_at_zero_and_ends_at_one(self, fig7):
        fit = two_pole_step_response(fig7, "out", segments_per_line=40)
        assert fit.step_response(0.0) == pytest.approx(0.0, abs=1e-9)
        assert fit.step_response(1e6) == pytest.approx(1.0, abs=1e-9)

    def test_step_response_rejects_negative_time(self, fig7):
        fit = two_pole_step_response(fig7, "out")
        with pytest.raises(Exception):
            fit.step_response(-1.0)

    def test_two_pole_monotone_in_threshold(self, fig7):
        moments = transfer_moments(fig7, ["out"], order=3, segments_per_line=40)["out"]
        delays = [delay_two_pole(moments, v) for v in (0.2, 0.5, 0.8)]
        assert delays == sorted(delays)


class TestValidation:
    def test_d2m_needs_second_moment(self):
        with pytest.raises(Exception):
            delay_d2m([1.0, -5.0], 0.5)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            delay_single_pole(single_rc_moments(), 1.0)

    def test_fit_rejects_positive_mu1(self):
        with pytest.raises(Exception):
            fit_two_pole([1.0, 5.0, 1.0])
