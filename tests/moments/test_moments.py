"""Tests for higher-order impulse-response moments."""

import pytest

from repro.core.networks import figure7_tree, rc_ladder, single_line
from repro.core.timeconstants import characteristic_times, characteristic_times_all
from repro.core.tree import RCTree
from repro.moments.moments import impulse_moments, transfer_moments


def single_rc(r=2.0, c=3.0):
    tree = RCTree()
    tree.add_resistor("in", "out", r)
    tree.add_capacitor("out", c)
    return tree


class TestSingleRC:
    """H(s) = 1/(1 + RCs): mu_k = (-RC)^k exactly."""

    def test_transfer_moments(self):
        moments = transfer_moments(single_rc(), ["out"], order=4)["out"]
        rc = 6.0
        assert moments == pytest.approx([1.0, -rc, rc**2, -(rc**3), rc**4])

    def test_impulse_moments(self):
        moments = impulse_moments(single_rc(), ["out"], order=3)["out"]
        rc = 6.0
        # M_k = k! (RC)^k for a single pole.
        assert moments == pytest.approx([1.0, rc, 2 * rc**2, 6 * rc**3])


class TestFirstMomentIsElmore:
    def test_on_figure7(self, fig7):
        moments = transfer_moments(fig7, ["out"], order=1)["out"]
        assert -moments[1] == pytest.approx(characteristic_times(fig7, "out").tde, rel=1e-9)

    def test_on_all_nodes_of_a_ladder(self):
        tree = rc_ladder(7, 3.0, 2.0)
        table = characteristic_times_all(tree, tree.nodes[1:])
        moments = transfer_moments(tree, tree.nodes[1:], order=1)
        for node in tree.nodes[1:]:
            assert -moments[node][1] == pytest.approx(table[node].tde, rel=1e-12)


class TestStructuralProperties:
    def test_moment_signs_alternate(self, fig7):
        moments = transfer_moments(fig7, ["out"], order=4)["out"]
        for k, value in enumerate(moments):
            assert (value >= 0) == (k % 2 == 0)

    def test_second_moment_at_least_half_square_of_first(self, small_random_tree):
        # The impulse response is a unit-mass non-negative density, so
        # E[t^2] >= (E[t])^2, i.e. 2 mu_2 >= mu_1^2.
        tree = small_random_tree
        for output in tree.outputs:
            moments = transfer_moments(tree, [output], order=2)[output]
            assert 2.0 * moments[2] >= moments[1] ** 2 * (1 - 1e-12)

    def test_default_outputs_are_marked_outputs(self, fig7):
        assert set(transfer_moments(fig7, order=2)) == {"out"}

    def test_unknown_output_rejected(self, fig7):
        from repro.core.exceptions import UnknownNodeError

        with pytest.raises(UnknownNodeError):
            transfer_moments(fig7, ["zz"])

    def test_order_validation(self, fig7):
        with pytest.raises(ValueError):
            transfer_moments(fig7, ["out"], order=0)


class TestDistributedLines:
    def test_first_moment_exact_despite_lumping(self):
        tree = single_line(4.0, 2.0)
        moments = transfer_moments(tree, ["out"], order=1, segments_per_line=5)["out"]
        assert -moments[1] == pytest.approx(4.0, rel=1e-12)  # RC/2

    def test_higher_moments_converge_with_segments(self):
        tree = single_line(1.0, 1.0)
        coarse = transfer_moments(tree, ["out"], order=2, segments_per_line=3)["out"][2]
        fine = transfer_moments(tree, ["out"], order=2, segments_per_line=60)["out"][2]
        finer = transfer_moments(tree, ["out"], order=2, segments_per_line=120)["out"][2]
        assert abs(finer - fine) < abs(fine - coarse)
