"""Tests for the experiment harness (one per reproduced figure)."""

import pytest

from repro.experiments.figure05 import figure05_envelope
from repro.experiments.figure10 import (
    PAPER_THRESHOLDS,
    PAPER_TIMES,
    figure10_delay_table,
    figure10_report,
    figure10_voltage_table,
)
from repro.experiments.figure11 import figure11_comparison
from repro.experiments.figure13 import figure13_sweep
from repro.experiments.runner import EXPERIMENTS, run_all


class TestFigure05:
    def test_structural_checks_pass(self):
        envelope = figure05_envelope(points=120)
        assert envelope.envelopes_ordered
        assert envelope.exact_inside
        assert envelope.approaches_one
        assert 0.0 <= envelope.upper_start < 1.0

    def test_without_exact_curve(self):
        envelope = figure05_envelope(points=50, include_exact=False)
        assert envelope.exact is None
        assert envelope.exact_inside  # vacuously true

    def test_custom_network(self, ladder10):
        envelope = figure05_envelope(ladder10, "out", points=60)
        assert envelope.envelopes_ordered


class TestFigure10:
    def test_delay_table_has_nine_rows(self):
        assert len(figure10_delay_table()) == 9
        assert [row[0] for row in figure10_delay_table()] == list(PAPER_THRESHOLDS)

    def test_voltage_table_has_eleven_rows(self):
        assert len(figure10_voltage_table()) == 11
        assert [row[0] for row in figure10_voltage_table()] == list(PAPER_TIMES)

    def test_report_matches_paper_within_print_precision(self):
        report = figure10_report()
        assert report.max_relative_error() < 5e-4

    def test_render_contains_both_tables(self):
        text = figure10_report().render()
        assert "delay bounds" in text
        assert "voltage bounds" in text
        assert "988.5" in text


class TestFigure11:
    def test_exact_response_inside_envelope(self):
        comparison = figure11_comparison(points=150, segments_per_line=30)
        assert comparison.check.within(5e-3)

    def test_exact_crossings_inside_delay_bounds(self):
        comparison = figure11_comparison(points=100, segments_per_line=30)
        for threshold, t_lower, t_exact, t_upper in comparison.crossings:
            assert t_lower <= t_exact <= t_upper

    def test_render(self):
        text = figure11_comparison(points=80, segments_per_line=20).render()
        assert "exact crossings" in text
        assert "envelope width" in text


class TestFigure13:
    def test_quadratic_slope(self):
        sweep = figure13_sweep()
        assert 1.5 <= sweep.loglog_slope() <= 2.2
        assert 1.5 <= sweep.loglog_slope(bound="lower") <= 2.3

    def test_ten_ns_claim(self):
        assert 8.0 <= figure13_sweep().upper_bound_at_100_ns <= 12.0

    def test_missing_100_minterms_raises(self):
        sweep = figure13_sweep(minterm_counts=(2, 4))
        with pytest.raises(ValueError):
            sweep.upper_bound_at_100_ns

    def test_render(self):
        text = figure13_sweep().render()
        assert "minterms" in text
        assert "10" in text


class TestRunner:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {"figure05", "figure10", "figure11", "figure13"}

    def test_run_all_passes(self):
        results = run_all()
        assert len(results) == 4
        assert all(result.passed for result in results)

    def test_run_selected(self):
        results = run_all(("figure10",))
        assert len(results) == 1
        assert results[0].experiment == "figure10"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_all(("figure99",))
