"""Tests for the design-level corner-sweep and sensitivity reports."""

import pytest

from repro.apps.corners import (
    corner_sweep,
    corner_sweep_table,
    derate_sensitivity,
)
from repro.generators import random_design
from repro.graph import TimingGraph
from repro.scenarios import Scenario, ScenarioSet
from repro.sta.delaycalc import DelayModel


@pytest.fixture(scope="module")
def graph():
    design, parasitics = random_design(40, seed=9, sequential_fraction=0.2)
    return TimingGraph(
        design, parasitics, clock_period=1.5e-9, input_drive_resistance=100.0
    )


class TestCornerSweep:
    def test_rows_match_batched_report(self, graph):
        scenarios = ScenarioSet.corners()
        rows = corner_sweep(graph, scenarios)
        report = graph.analyze_scenarios(scenarios, with_critical_paths=False)
        assert [row.name for row in rows] == scenarios.names
        for index, row in enumerate(rows):
            assert row.worst_slack[DelayModel.UPPER_BOUND.value] == pytest.approx(
                float(report.worst_slack[index, 1])
            )
            assert row.verdict == report.verdicts[index]

    def test_slow_corner_is_slower(self, graph):
        rows = {row.name: row for row in corner_sweep(graph, ScenarioSet.corners())}
        key = DelayModel.UPPER_BOUND.value
        assert rows["slow"].worst_slack[key] < rows["typical"].worst_slack[key]
        assert rows["fast"].worst_slack[key] > rows["typical"].worst_slack[key]

    def test_bound_spread_is_non_negative(self, graph):
        for row in corner_sweep(graph, ScenarioSet.corners()):
            assert row.bound_spread >= 0.0

    def test_per_corner_overrides_reported(self, graph):
        rows = corner_sweep(
            graph,
            ScenarioSet([Scenario("alt", clock_period=9e-9, threshold=0.8)]),
        )
        assert rows[0].clock_period == pytest.approx(9e-9)
        assert rows[0].threshold == pytest.approx(0.8)

    def test_table_formats(self, graph):
        table = corner_sweep_table(graph, ScenarioSet.corners())
        assert "corner sweep" in table
        assert "slow" in table and "typical" in table


class TestDerateSensitivity:
    def test_all_knobs_hurt_when_derated_up(self, graph):
        sensitivities = derate_sensitivity(graph)
        assert set(sensitivities) == {"r_derate", "c_derate", "drive_derate"}
        for knob, slope in sensitivities.items():
            assert slope <= 0.0, knob

    def test_capacitance_dominates_resistance_here(self, graph):
        # Every stage delay carries a C term; the wire-R term only multiplies
        # downstream C, so |d slack / d c_derate| >= |d slack / d r_derate|.
        sensitivities = derate_sensitivity(graph)
        assert abs(sensitivities["c_derate"]) >= abs(sensitivities["r_derate"])

    def test_delta_validation(self, graph):
        with pytest.raises(ValueError):
            derate_sensitivity(graph, delta=0.0)
