"""Tests for the clock-tree builder and skew analysis."""

import pytest

from repro.apps.clocktree import clock_skew_report, h_tree
from repro.core.timeconstants import characteristic_times_all
from repro.mos.drivers import DriverModel


class TestHTree:
    def test_leaf_count(self):
        for levels in (1, 2, 3, 4):
            tree = h_tree(levels)
            assert len(tree.outputs) == 2 ** levels

    def test_balanced_tree_has_identical_elmore_delays(self):
        tree = h_tree(3)
        delays = [t.tde for t in characteristic_times_all(tree).values()]
        assert max(delays) - min(delays) < 1e-18

    def test_driver_included_when_given(self):
        driver = DriverModel("clkbuf", 150.0, 30e-15)
        tree = h_tree(2, driver=driver)
        first_edge = tree.path_edges(tree.outputs[0])[0]
        assert first_edge.resistance == pytest.approx(150.0)

    def test_mismatch_creates_skew(self):
        balanced = clock_skew_report(h_tree(3))
        skewed = clock_skew_report(h_tree(3, leaf_capacitance_mismatch=(1.0, 2.0)))
        assert skewed.elmore_skew > balanced.elmore_skew

    def test_invalid_levels_rejected(self):
        with pytest.raises(ValueError):
            h_tree(0)


class TestSkewReport:
    def test_guaranteed_skew_bounds_elmore_skew(self):
        report = clock_skew_report(h_tree(3, leaf_capacitance_mismatch=(1.0, 1.5)))
        assert report.guaranteed_skew_bound >= report.elmore_skew

    def test_earliest_not_after_latest(self):
        report = clock_skew_report(h_tree(2))
        for leaf in report.latest:
            assert report.earliest[leaf] <= report.latest[leaf]

    def test_slowest_and_fastest_leaves_identified(self):
        report = clock_skew_report(h_tree(2, leaf_capacitance_mismatch=(1.0, 3.0)))
        assert report.latest[report.slowest_leaf] == max(report.latest.values())
        assert report.earliest[report.fastest_leaf] == min(report.earliest.values())

    def test_describe(self):
        text = clock_skew_report(h_tree(2)).describe()
        assert "skew" in text
        assert "ps" in text

    def test_deeper_tree_is_slower(self):
        shallow = clock_skew_report(h_tree(2))
        deep = clock_skew_report(h_tree(4))
        assert max(deep.elmore.values()) > max(shallow.elmore.values())
