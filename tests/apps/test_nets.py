"""Tests for the daisy-chain, star and comb-bus net builders."""

import pytest

from repro.apps.nets import comb_bus_net, daisy_chain_net, star_net
from repro.core.timeconstants import characteristic_times, characteristic_times_all
from repro.mos.drivers import DriverModel


DRIVER = DriverModel("drv", 1000.0, 10e-15)


class TestDaisyChain:
    def test_loads_in_order(self):
        tree = daisy_chain_net([10e-15, 20e-15, 30e-15], 100e-6)
        assert tree.outputs == ["load0", "load1", "load2"]
        assert tree.parent_of("load1") == "load0"

    def test_later_loads_are_slower(self):
        tree = daisy_chain_net([10e-15] * 4, 200e-6, driver=DRIVER)
        table = characteristic_times_all(tree)
        delays = [table[f"load{i}"].tde for i in range(4)]
        assert delays == sorted(delays)
        assert delays[0] < delays[-1]

    def test_requires_at_least_one_load(self):
        with pytest.raises(ValueError):
            daisy_chain_net([], 100e-6)


class TestStar:
    def test_every_load_direct_from_hub(self):
        tree = star_net([10e-15, 20e-15], 100e-6, driver=DRIVER)
        assert tree.parent_of("load0") == "drv"
        assert tree.parent_of("load1") == "drv"

    def test_star_outputs_fast_but_loaded_by_siblings(self):
        star = star_net([10e-15] * 4, 200e-6, driver=DRIVER)
        chain = daisy_chain_net([10e-15] * 4, 200e-6, driver=DRIVER)
        star_worst = max(t.tde for t in characteristic_times_all(star).values())
        chain_worst = max(t.tde for t in characteristic_times_all(chain).values())
        # The chain's far load sees all of the wire resistance in series and
        # is always slower than the star's worst output.
        assert star_worst < chain_worst


class TestCombBus:
    def test_structure(self):
        tree = comb_bus_net(4, 15e-15, 250e-6, 20e-6, driver=DRIVER)
        assert len(tree.outputs) == 4
        assert tree.parent_of("drop2") == "tap2"

    def test_far_drop_slower_than_near_drop(self):
        tree = comb_bus_net(4, 15e-15, 250e-6, 20e-6, driver=DRIVER)
        near = characteristic_times(tree, "drop0").tde
        far = characteristic_times(tree, "drop3").tde
        assert far > near

    def test_argument_validation(self):
        with pytest.raises(ValueError):
            comb_bus_net(0, 15e-15, 250e-6, 20e-6)
        with pytest.raises(ValueError):
            comb_bus_net(2, -1.0, 250e-6, 20e-6)


class TestDesignNetSummaries:
    def test_summaries_cover_every_timed_net(self):
        from repro.apps.nets import design_net_summaries
        from repro.generators import random_design
        from repro.graph import DesignDB

        design, parasitics = random_design(60, seed=8)
        db = DesignDB(design, parasitics)
        summaries = design_net_summaries(db)
        assert set(summaries) == set(db.timed_nets())
        for summary in summaries.values():
            assert summary.worst_latest >= summary.best_earliest - 1e-24
            assert summary.critical_output in db.sinks.pins

    def test_summaries_reflect_incremental_updates(self):
        from repro.apps.nets import design_net_summaries
        from repro.generators import random_design
        from repro.graph import DesignDB
        from repro.sta.parasitics import lumped

        design, parasitics = random_design(60, seed=8)
        db = DesignDB(design, parasitics)
        # A net with a real (cell) driver: extra load must slow it down.
        net = next(name for name in db.timed_nets() if not db.nets[name].driver.is_port)
        before = design_net_summaries(db)[net].worst_latest
        db.update_net(net, lumped(net, 500e-15))
        after = design_net_summaries(db)[net].worst_latest
        assert after > before
