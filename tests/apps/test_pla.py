"""Tests for the PLA line application (paper, Section V)."""

import pytest

from repro.apps.pla import (
    PLA_DRIVER,
    PLA_SECTION,
    max_minterms_within,
    pla_delay_sweep,
    pla_line_from_technology,
    pla_line_tree,
    pla_line_twoport,
)
from repro.core.bounds import delay_bounds
from repro.core.timeconstants import characteristic_times


class TestPLALineConstruction:
    def test_section_values_match_listing(self):
        assert PLA_SECTION.segment_resistance == pytest.approx(180.0)
        assert PLA_SECTION.segment_capacitance == pytest.approx(0.0107e-12)
        assert PLA_SECTION.gate_resistance == pytest.approx(30.0)
        assert PLA_SECTION.gate_capacitance == pytest.approx(0.0134e-12)
        assert PLA_DRIVER.effective_resistance == pytest.approx(378.0)

    def test_two_minterms_is_one_section(self):
        twoport = pla_line_twoport(2)
        # Driver R + one 180-ohm segment + one 30-ohm gate = 588 ohm to the far end.
        assert twoport.r22 == pytest.approx(378.0 + 180.0 + 30.0)
        assert twoport.ct == pytest.approx(0.04e-12 + 0.0107e-12 + 0.0134e-12)

    def test_odd_minterm_counts_round_up(self):
        assert pla_line_twoport(3).r22 == pytest.approx(pla_line_twoport(4).r22)

    def test_zero_minterms_is_just_the_driver(self):
        twoport = pla_line_twoport(0)
        assert twoport.r22 == pytest.approx(378.0)
        assert twoport.ct == pytest.approx(0.04e-12)

    def test_tree_matches_twoport(self):
        for count in (2, 10, 50):
            tree_times = characteristic_times(pla_line_tree(count), "out")
            algebra = pla_line_twoport(count)
            assert tree_times.tde == pytest.approx(algebra.td2, rel=1e-12)
            assert tree_times.tp == pytest.approx(algebra.tp, rel=1e-12)
            assert tree_times.tre == pytest.approx(algebra.tr2, rel=1e-12)

    def test_negative_minterms_rejected(self):
        with pytest.raises(ValueError):
            pla_line_twoport(-2)


class TestFromTechnology:
    def test_derived_values_close_to_paper(self):
        derived = characteristic_times(pla_line_from_technology(40), "out")
        listing = pla_line_twoport(40).characteristic_times()
        # The process-derived element values reproduce the paper's within ~15%.
        assert derived.tde == pytest.approx(listing.tde, rel=0.2)

    def test_more_minterms_always_slower(self):
        delays = [
            characteristic_times(pla_line_from_technology(count), "out").tde
            for count in (2, 10, 40)
        ]
        assert delays == sorted(delays)


class TestFigure13Sweep:
    def test_rows_are_monotone_in_minterms(self):
        rows = pla_delay_sweep([2, 10, 40, 100])
        uppers = [row.t_upper for row in rows]
        lowers = [row.t_lower for row in rows]
        assert uppers == sorted(uppers)
        assert lowers == sorted(lowers)

    def test_lower_below_upper(self):
        for row in pla_delay_sweep([2, 20, 100]):
            assert row.t_lower < row.t_upper

    def test_hundred_minterms_guaranteed_near_10_ns(self):
        row = pla_delay_sweep([100])[0]
        # The paper reads "no worse than 10 ns" off its log-log plot.
        assert 8.0 <= row.t_upper_ns <= 12.0

    def test_quadratic_growth(self):
        rows = pla_delay_sweep([25, 50, 100])
        ratio = rows[2].t_upper / rows[1].t_upper
        # Doubling the line length should roughly quadruple the delay.
        assert 3.0 < ratio < 4.5

    def test_ns_properties(self):
        row = pla_delay_sweep([10])[0]
        assert row.t_upper_ns == pytest.approx(row.t_upper * 1e9)
        assert row.threshold == 0.7


class TestMaxMinterms:
    def test_consistent_with_sweep(self):
        limit = max_minterms_within(10e-9)
        at_limit = pla_line_twoport(limit).characteristic_times()
        beyond = pla_line_twoport(limit + 2).characteristic_times()
        assert delay_bounds(at_limit, 0.7).upper <= 10e-9
        assert delay_bounds(beyond, 0.7).upper > 10e-9

    def test_tiny_deadline_gives_zero(self):
        assert max_minterms_within(1e-12) == 0
