"""Tests for waveform/bound comparison metrics."""

import numpy as np
import pytest

from repro.core.bounds import BoundedResponse
from repro.core.networks import figure7_tree
from repro.core.timeconstants import characteristic_times
from repro.simulate.compare import (
    bound_tightness,
    bounds_violations,
    max_abs_error,
    rms_error,
    threshold_delay_error,
)
from repro.simulate.state_space import simulate_step
from repro.simulate.waveform import Waveform


def make_waveform(offset=0.0):
    times = np.linspace(0.0, 10.0, 200)
    return Waveform(times, np.clip(1.0 - np.exp(-times) + offset, 0.0, None))


class TestErrorMetrics:
    def test_zero_error_against_itself(self):
        wf = make_waveform()
        assert max_abs_error(wf, wf) == 0.0
        assert rms_error(wf, wf) == 0.0

    def test_constant_offset(self):
        reference = make_waveform()
        shifted = make_waveform(offset=0.1)
        assert max_abs_error(reference, shifted) == pytest.approx(0.1, abs=1e-9)
        assert rms_error(reference, shifted) == pytest.approx(0.1, abs=1e-2)

    def test_rms_not_larger_than_max(self):
        reference = make_waveform()
        other = Waveform(reference.times, reference.values * 0.9)
        assert rms_error(reference, other) <= max_abs_error(reference, other) + 1e-15

    def test_threshold_delay_error(self):
        reference = make_waveform()
        slower = Waveform(reference.times, reference.values * 0.8)
        delta = threshold_delay_error(reference, slower, 0.5)
        assert delta is not None and delta > 0.0

    def test_threshold_delay_error_none_when_unreached(self):
        reference = make_waveform()
        too_small = Waveform(reference.times, reference.values * 0.1)
        assert threshold_delay_error(reference, too_small, 0.5) is None


class TestBoundsViolations:
    def test_exact_response_stays_inside(self, fig7, fig7_times):
        wf = simulate_step(fig7, "out", 800.0, points=300, segments_per_line=40)
        check = bounds_violations(wf, BoundedResponse(fig7_times))
        assert check.ok or check.within(1e-9)
        assert check.samples == 300

    def test_fabricated_violation_detected(self, fig7_times):
        bounded = BoundedResponse(fig7_times)
        times = np.linspace(0.0, 600.0, 100)
        too_fast = Waveform(times, np.minimum(1.0, times / 50.0))  # rises way too fast
        check = bounds_violations(too_fast, bounded)
        assert check.worst_upper_violation > 0.0
        assert not check.ok

    def test_within_tolerance_logic(self):
        from repro.simulate.compare import BoundsCheck

        check = BoundsCheck(worst_lower_violation=1e-5, worst_upper_violation=-1.0, samples=10)
        assert not check.ok
        assert check.within(1e-4)
        assert not check.within(1e-6)


class TestBoundTightness:
    def test_driver_dominated_is_tighter_than_wire_dominated(self):
        from repro.core.tree import RCTree

        def net(driver_r, wire_r):
            tree = RCTree()
            tree.add_resistor("in", "d", driver_r)
            tree.add_line("d", "out", wire_r, 1.0)
            tree.add_capacitor("out", 1.0)
            return BoundedResponse(characteristic_times(tree, "out"))

        thresholds = (0.2, 0.5, 0.8)
        driver_dominated = bound_tightness(net(100.0, 1.0), thresholds)
        wire_dominated = bound_tightness(net(1.0, 100.0), thresholds)
        # The paper: bounds are "very tight in the case where most of the
        # resistance is in the pullup".
        assert driver_dominated < wire_dominated

    def test_empty_threshold_list(self, fig7_times):
        assert bound_tightness(BoundedResponse(fig7_times), []) == 0.0
