"""Tests for MNA matrix assembly."""

import numpy as np
import pytest

from repro.core.exceptions import AnalysisError, ElementValueError
from repro.core.networks import figure7_tree, rc_ladder
from repro.core.tree import RCTree
from repro.simulate.mna import build_mna


class TestBuildMNA:
    def test_dimensions_exclude_input(self):
        system = build_mna(rc_ladder(5, 1.0, 1.0))
        assert system.size == 5
        assert system.conductance.shape == (5, 5)
        assert system.capacitance.shape == (5,)
        assert system.input_node == "in"

    def test_conductance_is_symmetric(self):
        system = build_mna(figure7_tree(), segments_per_line=8)
        assert np.allclose(system.conductance, system.conductance.T)

    def test_dc_solution_is_all_ones(self):
        system = build_mna(figure7_tree(), segments_per_line=8)
        assert np.allclose(system.dc_solution(), 1.0)

    def test_source_vector_only_on_nodes_touching_input(self):
        tree = rc_ladder(3, 2.0, 1.0)
        system = build_mna(tree)
        source = system.source
        first = system.index["s1"]
        assert source[first] == pytest.approx(0.5)
        assert np.count_nonzero(source) == 1

    def test_simple_ladder_matrix_values(self):
        tree = rc_ladder(2, 4.0, 3.0)
        system = build_mna(tree)
        i1, i2 = system.index["s1"], system.index["out"]
        g = system.conductance
        assert g[i1, i1] == pytest.approx(0.25 + 0.25)
        assert g[i2, i2] == pytest.approx(0.25)
        assert g[i1, i2] == pytest.approx(-0.25)
        assert system.capacitance[i1] == pytest.approx(3.0)

    def test_distributed_lines_are_lumped(self):
        tree = figure7_tree()
        system = build_mna(tree, segments_per_line=6)
        # The 3-ohm/4-F line becomes 6 segments: 5 internal nodes appear.
        assert system.size == len(tree) - 1 + 5

    def test_total_capacitance_preserved_by_lumping(self):
        tree = figure7_tree()
        system = build_mna(tree, segments_per_line=9)
        assert system.capacitance.sum() == pytest.approx(tree.total_capacitance)

    def test_capacitance_matrix_diagonal(self):
        system = build_mna(rc_ladder(3, 1.0, 2.0))
        matrix = system.capacitance_matrix()
        assert np.allclose(matrix, np.diag(system.capacitance))

    def test_zero_resistance_branch_rejected(self):
        tree = RCTree()
        tree.add_resistor("in", "a", 0.0)
        tree.add_capacitor("a", 1.0)
        with pytest.raises(ElementValueError):
            build_mna(tree)

    def test_empty_network_rejected(self):
        with pytest.raises(AnalysisError):
            build_mna(RCTree())
