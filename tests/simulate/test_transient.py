"""Tests for the companion-model transient engine."""

import math

import numpy as np
import pytest

from repro.core.exceptions import AnalysisError
from repro.core.networks import figure7_tree, rc_ladder
from repro.core.tree import RCTree
from repro.simulate.state_space import exact_step_response
from repro.simulate.transient import ramp_input, transient_step_response


def single_rc():
    tree = RCTree()
    tree.add_resistor("in", "out", 2.0)
    tree.add_capacitor("out", 3.0)
    return tree


class TestAgainstClosedForm:
    @pytest.mark.parametrize("method", ["trapezoidal", "backward-euler"])
    def test_single_rc_converges(self, method):
        result = transient_step_response(single_rc(), 30.0, steps=3000, method=method)
        wf = result.waveform("out")
        for t in (3.0, 6.0, 12.0):
            expected = 1.0 - math.exp(-t / 6.0)
            assert wf(t) == pytest.approx(expected, abs=2e-3)

    def test_trapezoidal_more_accurate_than_backward_euler(self):
        exact = lambda t: 1.0 - math.exp(-t / 6.0)
        trap = transient_step_response(single_rc(), 30.0, steps=300, method="trapezoidal")
        be = transient_step_response(single_rc(), 30.0, steps=300, method="backward-euler")
        t_probe = 6.0
        err_trap = abs(trap.waveform("out")(t_probe) - exact(t_probe))
        err_be = abs(be.waveform("out")(t_probe) - exact(t_probe))
        assert err_trap < err_be


class TestAgainstModalEngine:
    def test_figure7_agreement(self, fig7):
        exact = exact_step_response(fig7, segments_per_line=20)
        transient = transient_step_response(fig7, 600.0, steps=4000, segments_per_line=20)
        grid = np.linspace(0.0, 600.0, 50)
        modal = exact.voltage("out", grid)
        stepped = transient.waveform("out")(grid)
        assert np.max(np.abs(modal - stepped)) < 1e-3

    def test_ladder_agreement(self):
        tree = rc_ladder(8, 5.0, 2.0)
        exact = exact_step_response(tree)
        transient = transient_step_response(tree, 400.0, steps=4000)
        grid = np.linspace(0.0, 400.0, 40)
        assert np.max(np.abs(exact.voltage("out", grid) - transient.waveform("out")(grid))) < 1e-3


class TestDelays:
    def test_delay_extraction(self):
        result = transient_step_response(single_rc(), 40.0, steps=4000)
        assert result.delay("out", 0.5) == pytest.approx(6.0 * math.log(2.0), rel=1e-3)

    def test_unknown_node_raises(self):
        result = transient_step_response(single_rc(), 10.0, steps=100)
        with pytest.raises(AnalysisError):
            result.waveform("zz")


class TestRampInput:
    def test_ramp_shape(self):
        source = ramp_input(2.0, amplitude=3.0)
        assert source(-1.0) == 0.0
        assert source(1.0) == pytest.approx(1.5)
        assert source(5.0) == pytest.approx(3.0)

    def test_ramp_rejects_zero_rise(self):
        with pytest.raises(AnalysisError):
            ramp_input(0.0)

    def test_slow_ramp_slows_the_response(self):
        fast = transient_step_response(single_rc(), 40.0, steps=2000)
        slow = transient_step_response(
            single_rc(), 40.0, steps=2000, input_function=ramp_input(10.0)
        )
        assert slow.delay("out", 0.5) > fast.delay("out", 0.5)

    def test_final_value_reached_with_ramp(self):
        result = transient_step_response(
            single_rc(), 100.0, steps=2000, input_function=ramp_input(5.0)
        )
        assert result.waveform("out")(100.0) == pytest.approx(1.0, abs=1e-4)


class TestArgumentValidation:
    def test_bad_method(self):
        with pytest.raises(AnalysisError):
            transient_step_response(single_rc(), 1.0, method="gear2")

    def test_bad_t_end(self):
        with pytest.raises(AnalysisError):
            transient_step_response(single_rc(), 0.0)

    def test_bad_steps(self):
        with pytest.raises(AnalysisError):
            transient_step_response(single_rc(), 1.0, steps=0)
