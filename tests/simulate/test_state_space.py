"""Tests for the exact (modal) step-response engine."""

import math

import numpy as np
import pytest

from repro.core.exceptions import AnalysisError
from repro.core.networks import figure7_tree, rc_ladder, symmetric_fanout
from repro.core.timeconstants import characteristic_times, characteristic_times_all
from repro.core.tree import RCTree
from repro.simulate.state_space import exact_step_response, simulate_step


class TestSingleRC:
    """One resistor + one capacitor has the textbook exponential response."""

    def make_tree(self, r=2.0, c=3.0):
        tree = RCTree()
        tree.add_resistor("in", "out", r)
        tree.add_capacitor("out", c)
        return tree

    def test_response_matches_exponential(self):
        response = exact_step_response(self.make_tree())
        for t in (0.0, 1.0, 6.0, 20.0):
            expected = 1.0 - math.exp(-t / 6.0)
            assert float(response.voltage("out", t)) == pytest.approx(expected, abs=1e-12)

    def test_single_time_constant(self):
        response = exact_step_response(self.make_tree())
        assert response.time_constants.shape == (1,)
        assert response.time_constants[0] == pytest.approx(6.0)

    def test_delay_is_rc_ln2_at_half(self):
        response = exact_step_response(self.make_tree())
        assert response.delay("out", 0.5) == pytest.approx(6.0 * math.log(2.0), rel=1e-10)

    def test_elmore_equals_rc(self):
        response = exact_step_response(self.make_tree())
        assert response.elmore_delay("out") == pytest.approx(6.0)


class TestAgainstAnalyticalEngine:
    def test_elmore_delays_agree_on_figure7(self, fig7):
        response = exact_step_response(fig7, segments_per_line=40)
        analytic = characteristic_times(fig7, "out").tde
        assert response.elmore_delay("out") == pytest.approx(analytic, rel=1e-6)

    def test_elmore_delays_agree_on_ladder(self):
        tree = rc_ladder(12, 7.0, 3.0)
        response = exact_step_response(tree)
        table = characteristic_times_all(tree, tree.nodes[1:])
        for node in tree.nodes[1:]:
            assert response.elmore_delay(node) == pytest.approx(table[node].tde, rel=1e-9)

    def test_final_values_are_one(self, fig7):
        response = exact_step_response(fig7, segments_per_line=10)
        assert np.allclose(response.final_values, 1.0)

    def test_exact_delay_within_pr_bounds(self, fig7, fig7_times):
        from repro.core.bounds import delay_lower_bound, delay_upper_bound

        response = exact_step_response(fig7, segments_per_line=60)
        for threshold in (0.2, 0.5, 0.8):
            exact = response.delay("out", threshold)
            assert float(delay_lower_bound(fig7_times, threshold)) <= exact + 1e-9
            assert exact <= float(delay_upper_bound(fig7_times, threshold)) + 1e-9


class TestResistiveNodes:
    """Zero-capacitance nodes are eliminated exactly, not approximated."""

    def make_tree(self):
        tree = RCTree()
        tree.add_resistor("in", "mid", 1.0)   # no cap at mid
        tree.add_resistor("mid", "out", 1.0)
        tree.add_capacitor("out", 1.0)
        return tree

    def test_resistive_node_response(self):
        response = exact_step_response(self.make_tree())
        # v_out = 1 - exp(-t/2); v_mid = (1 + v_out)/2 by the resistive divider.
        for t in (0.1, 1.0, 5.0):
            v_out = 1.0 - math.exp(-t / 2.0)
            v_mid = 0.5 * (1.0 + v_out)
            assert float(response.voltage("out", t)) == pytest.approx(v_out, abs=1e-12)
            assert float(response.voltage("mid", t)) == pytest.approx(v_mid, abs=1e-12)

    def test_resistive_node_elmore(self):
        response = exact_step_response(self.make_tree())
        analytic = characteristic_times(self.make_tree(), "mid").tde
        assert response.elmore_delay("mid") == pytest.approx(analytic, rel=1e-12)

    def test_monotonic_everywhere(self):
        response = exact_step_response(self.make_tree())
        wf = response.waveform("mid", 10.0)
        assert wf.is_monotonic()


class TestEvaluationAPI:
    def test_evaluate_shapes(self, fig7):
        response = exact_step_response(fig7, segments_per_line=5)
        values = response.evaluate([0.0, 10.0, 100.0])
        assert values.shape == (3, len(response.nodes))
        scalar = response.evaluate(10.0)
        assert scalar.shape == (len(response.nodes),)

    def test_negative_time_rejected(self, fig7):
        response = exact_step_response(fig7)
        with pytest.raises(AnalysisError):
            response.evaluate(-1.0)

    def test_waveform_helper(self, fig7):
        wf = exact_step_response(fig7).waveform("out", 600.0, points=100)
        assert len(wf) == 100
        assert wf.is_monotonic()

    def test_simulate_step_wrapper(self, fig7):
        wf = simulate_step(fig7, "out", 600.0, points=50)
        assert wf.t_end == pytest.approx(600.0)

    def test_simulate_step_unknown_node(self, fig7):
        with pytest.raises(AnalysisError):
            simulate_step(fig7, "nonexistent", 100.0)

    def test_delay_threshold_validation(self, fig7):
        response = exact_step_response(fig7)
        with pytest.raises(AnalysisError):
            response.delay("out", 1.5)

    def test_no_capacitance_rejected(self):
        tree = RCTree()
        tree.add_resistor("in", "a", 1.0)
        with pytest.raises(AnalysisError):
            exact_step_response(tree)


class TestFanoutSymmetry:
    def test_symmetric_branches_have_identical_responses(self):
        tree = symmetric_fanout(3, 100.0, 50.0, 2e-12, 1e-12)
        response = exact_step_response(tree, segments_per_line=10)
        t = np.linspace(0, 1e-9, 20)
        v1 = response.voltage("load1", t)
        v2 = response.voltage("load2", t)
        assert np.allclose(v1, v2)
