"""Tests for the Waveform value type."""

import numpy as np
import pytest

from repro.core.exceptions import AnalysisError
from repro.simulate.waveform import Waveform


def exponential_waveform(tau=1.0, t_end=10.0, points=500):
    times = np.linspace(0.0, t_end, points)
    return Waveform(times, 1.0 - np.exp(-times / tau))


class TestConstruction:
    def test_basic(self):
        wf = exponential_waveform()
        assert len(wf) == 500
        assert wf.t_start == 0.0
        assert wf.t_end == 10.0
        assert wf.final_value == pytest.approx(1.0 - np.exp(-10.0))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(AnalysisError):
            Waveform(np.array([0.0, 1.0, 2.0]), np.array([0.0, 1.0]))

    def test_non_increasing_times_rejected(self):
        with pytest.raises(AnalysisError):
            Waveform(np.array([0.0, 1.0, 1.0]), np.array([0.0, 0.5, 0.6]))

    def test_single_sample_rejected(self):
        with pytest.raises(AnalysisError):
            Waveform(np.array([0.0]), np.array([0.0]))

    def test_two_dimensional_rejected(self):
        with pytest.raises(AnalysisError):
            Waveform(np.zeros((2, 2)), np.zeros((2, 2)))


class TestInterpolation:
    def test_call_scalar(self):
        wf = exponential_waveform()
        assert wf(1.0) == pytest.approx(1.0 - np.exp(-1.0), abs=1e-3)

    def test_call_array(self):
        wf = exponential_waveform()
        values = wf(np.array([0.5, 1.5]))
        assert values.shape == (2,)

    def test_clamps_outside_range(self):
        wf = exponential_waveform()
        assert wf(-5.0) == wf.values[0]
        assert wf(100.0) == wf.values[-1]

    def test_sample_resamples(self):
        wf = exponential_waveform()
        resampled = wf.sample(np.linspace(0, 5, 10))
        assert len(resampled) == 10
        assert resampled.t_end == pytest.approx(5.0)


class TestCrossings:
    def test_crossing_time_exponential(self):
        wf = exponential_waveform(tau=2.0)
        assert wf.crossing_time(0.5) == pytest.approx(2.0 * np.log(2.0), rel=1e-3)

    def test_crossing_none_when_never_reached(self):
        wf = exponential_waveform(t_end=0.1)
        assert wf.crossing_time(0.99) is None

    def test_delay_to_raises_when_never_reached(self):
        wf = exponential_waveform(t_end=0.1)
        with pytest.raises(AnalysisError):
            wf.delay_to(0.99)

    def test_crossing_at_first_sample(self):
        wf = Waveform(np.array([0.0, 1.0]), np.array([0.7, 0.9]))
        assert wf.crossing_time(0.5) == 0.0

    def test_falling_crossing(self):
        times = np.linspace(0, 10, 200)
        wf = Waveform(times, np.exp(-times))
        assert wf.crossing_time(0.5, rising=False) == pytest.approx(np.log(2.0), rel=1e-3)

    def test_rise_time(self):
        wf = exponential_waveform(tau=1.0)
        expected = np.log(10.0) - np.log(10.0 / 9.0)
        assert wf.rise_time() == pytest.approx(expected, rel=1e-3)


class TestTransforms:
    def test_shifted(self):
        wf = exponential_waveform()
        shifted = wf.shifted(2.0)
        assert shifted.t_start == pytest.approx(2.0)
        assert shifted.values[0] == wf.values[0]

    def test_scaled(self):
        wf = exponential_waveform()
        assert wf.scaled(3.3).final_value == pytest.approx(3.3 * wf.final_value)

    def test_clipped(self):
        wf = Waveform(np.array([0.0, 1.0, 2.0]), np.array([-0.5, 0.5, 1.5]))
        clipped = wf.clipped()
        assert clipped.values.min() == 0.0
        assert clipped.values.max() == 1.0

    def test_subtraction(self):
        wf = exponential_waveform()
        zero = wf - wf
        assert np.allclose(zero.values, 0.0)

    def test_monotonic_check(self):
        assert exponential_waveform().is_monotonic()
        wobble = Waveform(np.array([0.0, 1.0, 2.0]), np.array([0.0, 1.0, 0.5]))
        assert not wobble.is_monotonic()
